#include "service/navigator.h"

#include <memory>
#include <utility>

#include "plan/executor.h"
#include "util/check.h"

namespace coursenav {

namespace {

/// Non-owning shared_ptr view of a caller-owned object (the aliasing
/// constructor with an empty control block); the wrappers' reference
/// parameters outlive the exploration call by contract.
template <typename T>
std::shared_ptr<const T> Borrow(const T& object) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>(), &object);
}

}  // namespace

Result<ExplorationResponse> CourseNavigator::Explore(
    const ExplorationRequest& request, cache::CacheOutcome* outcome) const {
  if (cache_ == nullptr) {
    if (outcome != nullptr) *outcome = cache::CacheOutcome::kDisabled;
    return plan::Execute(*catalog_, *schedule_, request);
  }
  return cache_->Execute(*catalog_, *schedule_, request, outcome);
}

Result<GenerationResult> CourseNavigator::ExploreDeadline(
    const EnrollmentStatus& start, Term end_term,
    const ExplorationOptions& options) const {
  ExplorationRequest request;
  request.start = start;
  request.end_term = end_term;
  request.type = TaskType::kDeadlineDriven;
  request.options = options;
  COURSENAV_ASSIGN_OR_RETURN(ExplorationResponse response, Explore(request));
  CN_CHECK(response.generation.has_value());
  return std::move(*response.generation);
}

Result<GenerationResult> CourseNavigator::ExploreGoal(
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const ExplorationOptions& options, const GoalDrivenConfig& config) const {
  ExplorationRequest request;
  request.start = start;
  request.end_term = end_term;
  request.type = TaskType::kGoalDriven;
  request.goal = Borrow(goal);
  request.options = options;
  request.config = config;
  COURSENAV_ASSIGN_OR_RETURN(ExplorationResponse response, Explore(request));
  CN_CHECK(response.generation.has_value());
  return std::move(*response.generation);
}

Result<RankedResult> CourseNavigator::ExploreTopK(
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const RankingFunction& ranking, int k, const ExplorationOptions& options,
    const GoalDrivenConfig& config) const {
  ExplorationRequest request;
  request.start = start;
  request.end_term = end_term;
  request.type = TaskType::kRanked;
  request.goal = Borrow(goal);
  request.ranking = Borrow(ranking);
  request.top_k = k;
  request.options = options;
  request.config = config;
  COURSENAV_ASSIGN_OR_RETURN(ExplorationResponse response, Explore(request));
  CN_CHECK(response.ranked.has_value());
  return std::move(*response.ranked);
}

Result<CountingResult> CourseNavigator::CountDeadline(
    const EnrollmentStatus& start, Term end_term,
    const ExplorationOptions& options) const {
  return CountDeadlineDrivenPaths(*catalog_, *schedule_, start, end_term,
                                  options);
}

Result<CountingResult> CourseNavigator::CountGoal(
    const EnrollmentStatus& start, Term end_term, const Goal& goal,
    const ExplorationOptions& options, const GoalDrivenConfig& config) const {
  return CountGoalDrivenPaths(*catalog_, *schedule_, start, end_term, goal,
                              options, config);
}

}  // namespace coursenav

#ifndef COURSENAV_SERVICE_VISUALIZER_H_
#define COURSENAV_SERVICE_VISUALIZER_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/stats.h"
#include "graph/learning_graph.h"
#include "graph/path.h"

namespace coursenav {

/// Text back end of the Learning Path Visualizer (Figure 2): renders
/// exploration output for a terminal. (The DOT/JSON back ends live in
/// graph/export.h.)

/// Renders paths as numbered semester-by-semester tables:
///
/// ```
/// Path 1 (cost 4):
///   Fall 2012:   COSI11A, COSI29A
///   Spring 2013: COSI12B, COSI21A
/// ```
std::string RenderPaths(const std::vector<LearningPath>& paths,
                        const Catalog& catalog, int limit = 10);

/// One-paragraph summary of a generated graph: node/edge counts, paths,
/// pruning effectiveness.
std::string RenderGraphSummary(const LearningGraph& graph,
                               const ExplorationStats& stats);

/// Renders a single node's enrollment status.
std::string RenderStatus(const LearningGraph& graph, NodeId node,
                         const Catalog& catalog);

}  // namespace coursenav

#endif  // COURSENAV_SERVICE_VISUALIZER_H_

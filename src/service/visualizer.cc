#include "service/visualizer.h"

#include <algorithm>

#include "util/string_util.h"

namespace coursenav {

std::string RenderPaths(const std::vector<LearningPath>& paths,
                        const Catalog& catalog, int limit) {
  std::string out;
  int shown = std::min<int>(limit, static_cast<int>(paths.size()));
  for (int i = 0; i < shown; ++i) {
    const LearningPath& path = paths[static_cast<size_t>(i)];
    out += StrFormat("Path %d (cost %.3f):\n", i + 1, path.cost());
    for (const PathStep& step : path.steps()) {
      std::string courses;
      bool first = true;
      step.selection.ForEach([&](int id) {
        if (!first) courses += ", ";
        courses += catalog.course(static_cast<CourseId>(id)).code;
        first = false;
      });
      if (courses.empty()) courses = "(skip)";
      out += StrFormat("  %-12s %s\n", step.term.ToString().c_str(),
                       courses.c_str());
    }
  }
  if (static_cast<int>(paths.size()) > shown) {
    out += StrFormat("... and %d more paths\n",
                     static_cast<int>(paths.size()) - shown);
  }
  return out;
}

std::string RenderGraphSummary(const LearningGraph& graph,
                               const ExplorationStats& stats) {
  std::string out;
  out += StrFormat("Learning graph: %lld nodes, %lld edges (%.1f MiB)\n",
                   static_cast<long long>(graph.num_nodes()),
                   static_cast<long long>(graph.num_edges()),
                   static_cast<double>(graph.MemoryUsage()) / (1024 * 1024));
  out += StrFormat(
      "Paths: %lld total, %lld reaching the exploration goal, %lld dead "
      "ends\n",
      static_cast<long long>(stats.terminal_paths),
      static_cast<long long>(stats.goal_paths),
      static_cast<long long>(stats.dead_end_paths));
  if (stats.TotalPruned() > 0) {
    double time_share = 100.0 * static_cast<double>(stats.pruned_time) /
                        static_cast<double>(stats.TotalPruned());
    out += StrFormat(
        "Pruned subtrees: %lld (%.1f%% time-based, %.1f%% availability)\n",
        static_cast<long long>(stats.TotalPruned()), time_share,
        100.0 - time_share);
  }
  out += StrFormat("Runtime: %.3fs\n", stats.runtime_seconds);
  return out;
}

std::string RenderStatus(const LearningGraph& graph, NodeId node,
                         const Catalog& catalog) {
  const LearningNode& n = graph.node(node);
  return StrFormat("%s: completed %s, options %s%s",
                   n.term.ToString().c_str(),
                   catalog.CourseSetToString(n.completed).c_str(),
                   catalog.CourseSetToString(n.options).c_str(),
                   n.is_goal ? " [goal]" : "");
}

}  // namespace coursenav

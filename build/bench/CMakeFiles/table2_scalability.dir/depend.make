# Empty dependencies file for table2_scalability.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table2_scalability.dir/table2_scalability.cc.o"
  "CMakeFiles/table2_scalability.dir/table2_scalability.cc.o.d"
  "table2_scalability"
  "table2_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

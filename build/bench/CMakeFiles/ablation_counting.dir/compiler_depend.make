# Empty compiler generated dependencies file for ablation_counting.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_counting.dir/ablation_counting.cc.o"
  "CMakeFiles/ablation_counting.dir/ablation_counting.cc.o.d"
  "ablation_counting"
  "ablation_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/figure4_ranked.dir/figure4_ranked.cc.o"
  "CMakeFiles/figure4_ranked.dir/figure4_ranked.cc.o.d"
  "figure4_ranked"
  "figure4_ranked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_ranked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

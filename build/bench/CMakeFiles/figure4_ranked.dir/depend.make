# Empty dependencies file for figure4_ranked.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table1_pruning.dir/table1_pruning.cc.o"
  "CMakeFiles/table1_pruning.dir/table1_pruning.cc.o.d"
  "table1_pruning"
  "table1_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table1_pruning.
# This may be replaced when dependencies are built.

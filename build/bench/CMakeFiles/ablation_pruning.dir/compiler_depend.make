# Empty compiler generated dependencies file for ablation_pruning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_pruning.dir/ablation_pruning.cc.o"
  "CMakeFiles/ablation_pruning.dir/ablation_pruning.cc.o.d"
  "ablation_pruning"
  "ablation_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_ranked.dir/ablation_ranked.cc.o"
  "CMakeFiles/ablation_ranked.dir/ablation_ranked.cc.o.d"
  "ablation_ranked"
  "ablation_ranked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ranked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

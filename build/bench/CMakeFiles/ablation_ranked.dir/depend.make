# Empty dependencies file for ablation_ranked.
# This may be replaced when dependencies are built.

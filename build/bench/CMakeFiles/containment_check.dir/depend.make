# Empty dependencies file for containment_check.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/containment_check.dir/containment_check.cc.o"
  "CMakeFiles/containment_check.dir/containment_check.cc.o.d"
  "containment_check"
  "containment_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containment_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

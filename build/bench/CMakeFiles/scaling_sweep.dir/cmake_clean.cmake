file(REMOVE_RECURSE
  "CMakeFiles/scaling_sweep.dir/scaling_sweep.cc.o"
  "CMakeFiles/scaling_sweep.dir/scaling_sweep.cc.o.d"
  "scaling_sweep"
  "scaling_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

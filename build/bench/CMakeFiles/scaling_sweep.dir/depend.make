# Empty dependencies file for scaling_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/degree_planner.dir/degree_planner.cpp.o"
  "CMakeFiles/degree_planner.dir/degree_planner.cpp.o.d"
  "degree_planner"
  "degree_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degree_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for degree_planner.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/whatif_explorer.dir/whatif_explorer.cpp.o"
  "CMakeFiles/whatif_explorer.dir/whatif_explorer.cpp.o.d"
  "whatif_explorer"
  "whatif_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

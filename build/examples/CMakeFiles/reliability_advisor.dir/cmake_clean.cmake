file(REMOVE_RECURSE
  "CMakeFiles/reliability_advisor.dir/reliability_advisor.cpp.o"
  "CMakeFiles/reliability_advisor.dir/reliability_advisor.cpp.o.d"
  "reliability_advisor"
  "reliability_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for reliability_advisor.
# This may be replaced when dependencies are built.

# Empty dependencies file for interactive_session.
# This may be replaced when dependencies are built.

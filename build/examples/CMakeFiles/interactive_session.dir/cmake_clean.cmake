file(REMOVE_RECURSE
  "CMakeFiles/interactive_session.dir/interactive_session.cpp.o"
  "CMakeFiles/interactive_session.dir/interactive_session.cpp.o.d"
  "interactive_session"
  "interactive_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/flow_test.dir/flow_test.cc.o"
  "CMakeFiles/flow_test.dir/flow_test.cc.o.d"
  "flow_test"
  "flow_test.pdb"
  "flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for requirements_test.
# This may be replaced when dependencies are built.

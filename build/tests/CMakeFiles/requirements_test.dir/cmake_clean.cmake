file(REMOVE_RECURSE
  "CMakeFiles/requirements_test.dir/requirements_test.cc.o"
  "CMakeFiles/requirements_test.dir/requirements_test.cc.o.d"
  "requirements_test"
  "requirements_test.pdb"
  "requirements_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/requirements_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/expr_test.cc" "tests/CMakeFiles/expr_test.dir/expr_test.cc.o" "gcc" "tests/CMakeFiles/expr_test.dir/expr_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/service/CMakeFiles/coursenav_service.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/coursenav_data.dir/DependInfo.cmake"
  "/root/repo/build/src/parsers/CMakeFiles/coursenav_parsers.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/coursenav_core.dir/DependInfo.cmake"
  "/root/repo/build/src/requirements/CMakeFiles/coursenav_requirements.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/coursenav_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/coursenav_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/coursenav_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/coursenav_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coursenav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/expr_test.dir/expr_test.cc.o"
  "CMakeFiles/expr_test.dir/expr_test.cc.o.d"
  "expr_test"
  "expr_test.pdb"
  "expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for credit_goal_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/credit_goal_test.dir/credit_goal_test.cc.o"
  "CMakeFiles/credit_goal_test.dir/credit_goal_test.cc.o.d"
  "credit_goal_test"
  "credit_goal_test.pdb"
  "credit_goal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/credit_goal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

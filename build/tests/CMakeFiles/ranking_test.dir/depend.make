# Empty dependencies file for ranking_test.
# This may be replaced when dependencies are built.

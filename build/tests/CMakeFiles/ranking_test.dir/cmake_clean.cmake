file(REMOVE_RECURSE
  "CMakeFiles/ranking_test.dir/ranking_test.cc.o"
  "CMakeFiles/ranking_test.dir/ranking_test.cc.o.d"
  "ranking_test"
  "ranking_test.pdb"
  "ranking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

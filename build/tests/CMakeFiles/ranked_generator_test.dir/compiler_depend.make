# Empty compiler generated dependencies file for ranked_generator_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ranked_generator_test.dir/ranked_generator_test.cc.o"
  "CMakeFiles/ranked_generator_test.dir/ranked_generator_test.cc.o.d"
  "ranked_generator_test"
  "ranked_generator_test.pdb"
  "ranked_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ranked_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

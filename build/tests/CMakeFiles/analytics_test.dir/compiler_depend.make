# Empty compiler generated dependencies file for analytics_test.
# This may be replaced when dependencies are built.

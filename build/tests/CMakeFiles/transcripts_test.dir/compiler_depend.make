# Empty compiler generated dependencies file for transcripts_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/transcripts_test.dir/transcripts_test.cc.o"
  "CMakeFiles/transcripts_test.dir/transcripts_test.cc.o.d"
  "transcripts_test"
  "transcripts_test.pdb"
  "transcripts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transcripts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

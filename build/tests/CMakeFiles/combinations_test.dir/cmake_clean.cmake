file(REMOVE_RECURSE
  "CMakeFiles/combinations_test.dir/combinations_test.cc.o"
  "CMakeFiles/combinations_test.dir/combinations_test.cc.o.d"
  "combinations_test"
  "combinations_test.pdb"
  "combinations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/combinations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for combinations_test.
# This may be replaced when dependencies are built.

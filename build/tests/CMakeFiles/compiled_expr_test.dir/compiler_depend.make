# Empty compiler generated dependencies file for compiled_expr_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/compiled_expr_test.dir/compiled_expr_test.cc.o"
  "CMakeFiles/compiled_expr_test.dir/compiled_expr_test.cc.o.d"
  "compiled_expr_test"
  "compiled_expr_test.pdb"
  "compiled_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiled_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/budget_test.dir/budget_test.cc.o"
  "CMakeFiles/budget_test.dir/budget_test.cc.o.d"
  "budget_test"
  "budget_test.pdb"
  "budget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for budget_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for brandeis_dataset_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/brandeis_dataset_test.dir/brandeis_dataset_test.cc.o"
  "CMakeFiles/brandeis_dataset_test.dir/brandeis_dataset_test.cc.o.d"
  "brandeis_dataset_test"
  "brandeis_dataset_test.pdb"
  "brandeis_dataset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brandeis_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for deadline_generator_test.
# This may be replaced when dependencies are built.

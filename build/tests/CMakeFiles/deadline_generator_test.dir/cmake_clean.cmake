file(REMOVE_RECURSE
  "CMakeFiles/deadline_generator_test.dir/deadline_generator_test.cc.o"
  "CMakeFiles/deadline_generator_test.dir/deadline_generator_test.cc.o.d"
  "deadline_generator_test"
  "deadline_generator_test.pdb"
  "deadline_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/parsers_test.dir/parsers_test.cc.o"
  "CMakeFiles/parsers_test.dir/parsers_test.cc.o.d"
  "parsers_test"
  "parsers_test.pdb"
  "parsers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

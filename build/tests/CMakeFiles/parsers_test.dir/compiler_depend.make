# Empty compiler generated dependencies file for parsers_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/navigator_test.dir/navigator_test.cc.o"
  "CMakeFiles/navigator_test.dir/navigator_test.cc.o.d"
  "navigator_test"
  "navigator_test.pdb"
  "navigator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navigator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for navigator_test.
# This may be replaced when dependencies are built.

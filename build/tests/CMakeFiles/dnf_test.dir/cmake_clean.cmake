file(REMOVE_RECURSE
  "CMakeFiles/dnf_test.dir/dnf_test.cc.o"
  "CMakeFiles/dnf_test.dir/dnf_test.cc.o.d"
  "dnf_test"
  "dnf_test.pdb"
  "dnf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dnf_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/reference_enumeration_test.dir/reference_enumeration_test.cc.o"
  "CMakeFiles/reference_enumeration_test.dir/reference_enumeration_test.cc.o.d"
  "reference_enumeration_test"
  "reference_enumeration_test.pdb"
  "reference_enumeration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_enumeration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for goal_generator_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/goal_generator_test.dir/goal_generator_test.cc.o"
  "CMakeFiles/goal_generator_test.dir/goal_generator_test.cc.o.d"
  "goal_generator_test"
  "goal_generator_test.pdb"
  "goal_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goal_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for visualizer_test.
# This may be replaced when dependencies are built.

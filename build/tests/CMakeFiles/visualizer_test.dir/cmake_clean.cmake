file(REMOVE_RECURSE
  "CMakeFiles/visualizer_test.dir/visualizer_test.cc.o"
  "CMakeFiles/visualizer_test.dir/visualizer_test.cc.o.d"
  "visualizer_test"
  "visualizer_test.pdb"
  "visualizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expr/compiled_expr.cc" "src/expr/CMakeFiles/coursenav_expr.dir/compiled_expr.cc.o" "gcc" "src/expr/CMakeFiles/coursenav_expr.dir/compiled_expr.cc.o.d"
  "/root/repo/src/expr/dnf.cc" "src/expr/CMakeFiles/coursenav_expr.dir/dnf.cc.o" "gcc" "src/expr/CMakeFiles/coursenav_expr.dir/dnf.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/expr/CMakeFiles/coursenav_expr.dir/expr.cc.o" "gcc" "src/expr/CMakeFiles/coursenav_expr.dir/expr.cc.o.d"
  "/root/repo/src/expr/parser.cc" "src/expr/CMakeFiles/coursenav_expr.dir/parser.cc.o" "gcc" "src/expr/CMakeFiles/coursenav_expr.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coursenav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcoursenav_expr.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/coursenav_expr.dir/compiled_expr.cc.o"
  "CMakeFiles/coursenav_expr.dir/compiled_expr.cc.o.d"
  "CMakeFiles/coursenav_expr.dir/dnf.cc.o"
  "CMakeFiles/coursenav_expr.dir/dnf.cc.o.d"
  "CMakeFiles/coursenav_expr.dir/expr.cc.o"
  "CMakeFiles/coursenav_expr.dir/expr.cc.o.d"
  "CMakeFiles/coursenav_expr.dir/parser.cc.o"
  "CMakeFiles/coursenav_expr.dir/parser.cc.o.d"
  "libcoursenav_expr.a"
  "libcoursenav_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coursenav_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for coursenav_expr.
# This may be replaced when dependencies are built.

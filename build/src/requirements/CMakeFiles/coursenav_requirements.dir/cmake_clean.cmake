file(REMOVE_RECURSE
  "CMakeFiles/coursenav_requirements.dir/credit_goal.cc.o"
  "CMakeFiles/coursenav_requirements.dir/credit_goal.cc.o.d"
  "CMakeFiles/coursenav_requirements.dir/degree_requirement.cc.o"
  "CMakeFiles/coursenav_requirements.dir/degree_requirement.cc.o.d"
  "CMakeFiles/coursenav_requirements.dir/expr_goal.cc.o"
  "CMakeFiles/coursenav_requirements.dir/expr_goal.cc.o.d"
  "CMakeFiles/coursenav_requirements.dir/goal.cc.o"
  "CMakeFiles/coursenav_requirements.dir/goal.cc.o.d"
  "libcoursenav_requirements.a"
  "libcoursenav_requirements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coursenav_requirements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

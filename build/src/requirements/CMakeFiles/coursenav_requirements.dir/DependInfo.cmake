
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/requirements/credit_goal.cc" "src/requirements/CMakeFiles/coursenav_requirements.dir/credit_goal.cc.o" "gcc" "src/requirements/CMakeFiles/coursenav_requirements.dir/credit_goal.cc.o.d"
  "/root/repo/src/requirements/degree_requirement.cc" "src/requirements/CMakeFiles/coursenav_requirements.dir/degree_requirement.cc.o" "gcc" "src/requirements/CMakeFiles/coursenav_requirements.dir/degree_requirement.cc.o.d"
  "/root/repo/src/requirements/expr_goal.cc" "src/requirements/CMakeFiles/coursenav_requirements.dir/expr_goal.cc.o" "gcc" "src/requirements/CMakeFiles/coursenav_requirements.dir/expr_goal.cc.o.d"
  "/root/repo/src/requirements/goal.cc" "src/requirements/CMakeFiles/coursenav_requirements.dir/goal.cc.o" "gcc" "src/requirements/CMakeFiles/coursenav_requirements.dir/goal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/coursenav_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/coursenav_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/coursenav_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coursenav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcoursenav_requirements.a"
)

# Empty compiler generated dependencies file for coursenav_requirements.
# This may be replaced when dependencies are built.

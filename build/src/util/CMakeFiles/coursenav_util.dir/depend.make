# Empty dependencies file for coursenav_util.
# This may be replaced when dependencies are built.

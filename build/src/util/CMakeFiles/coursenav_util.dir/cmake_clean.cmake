file(REMOVE_RECURSE
  "CMakeFiles/coursenav_util.dir/bitset.cc.o"
  "CMakeFiles/coursenav_util.dir/bitset.cc.o.d"
  "CMakeFiles/coursenav_util.dir/flags.cc.o"
  "CMakeFiles/coursenav_util.dir/flags.cc.o.d"
  "CMakeFiles/coursenav_util.dir/json.cc.o"
  "CMakeFiles/coursenav_util.dir/json.cc.o.d"
  "CMakeFiles/coursenav_util.dir/logging.cc.o"
  "CMakeFiles/coursenav_util.dir/logging.cc.o.d"
  "CMakeFiles/coursenav_util.dir/random.cc.o"
  "CMakeFiles/coursenav_util.dir/random.cc.o.d"
  "CMakeFiles/coursenav_util.dir/status.cc.o"
  "CMakeFiles/coursenav_util.dir/status.cc.o.d"
  "CMakeFiles/coursenav_util.dir/string_util.cc.o"
  "CMakeFiles/coursenav_util.dir/string_util.cc.o.d"
  "libcoursenav_util.a"
  "libcoursenav_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coursenav_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

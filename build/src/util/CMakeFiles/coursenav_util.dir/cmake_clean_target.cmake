file(REMOVE_RECURSE
  "libcoursenav_util.a"
)

# Empty dependencies file for coursenav_data.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcoursenav_data.a"
)

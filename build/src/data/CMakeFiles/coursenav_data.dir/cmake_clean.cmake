file(REMOVE_RECURSE
  "CMakeFiles/coursenav_data.dir/brandeis_cs.cc.o"
  "CMakeFiles/coursenav_data.dir/brandeis_cs.cc.o.d"
  "CMakeFiles/coursenav_data.dir/synthetic.cc.o"
  "CMakeFiles/coursenav_data.dir/synthetic.cc.o.d"
  "CMakeFiles/coursenav_data.dir/transcripts.cc.o"
  "CMakeFiles/coursenav_data.dir/transcripts.cc.o.d"
  "libcoursenav_data.a"
  "libcoursenav_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coursenav_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for coursenav_parsers.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/coursenav_parsers.dir/catalog_loader.cc.o"
  "CMakeFiles/coursenav_parsers.dir/catalog_loader.cc.o.d"
  "CMakeFiles/coursenav_parsers.dir/prereq_parser.cc.o"
  "CMakeFiles/coursenav_parsers.dir/prereq_parser.cc.o.d"
  "CMakeFiles/coursenav_parsers.dir/schedule_parser.cc.o"
  "CMakeFiles/coursenav_parsers.dir/schedule_parser.cc.o.d"
  "CMakeFiles/coursenav_parsers.dir/transcript_parser.cc.o"
  "CMakeFiles/coursenav_parsers.dir/transcript_parser.cc.o.d"
  "libcoursenav_parsers.a"
  "libcoursenav_parsers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coursenav_parsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

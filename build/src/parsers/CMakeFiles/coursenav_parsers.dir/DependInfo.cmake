
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parsers/catalog_loader.cc" "src/parsers/CMakeFiles/coursenav_parsers.dir/catalog_loader.cc.o" "gcc" "src/parsers/CMakeFiles/coursenav_parsers.dir/catalog_loader.cc.o.d"
  "/root/repo/src/parsers/prereq_parser.cc" "src/parsers/CMakeFiles/coursenav_parsers.dir/prereq_parser.cc.o" "gcc" "src/parsers/CMakeFiles/coursenav_parsers.dir/prereq_parser.cc.o.d"
  "/root/repo/src/parsers/schedule_parser.cc" "src/parsers/CMakeFiles/coursenav_parsers.dir/schedule_parser.cc.o" "gcc" "src/parsers/CMakeFiles/coursenav_parsers.dir/schedule_parser.cc.o.d"
  "/root/repo/src/parsers/transcript_parser.cc" "src/parsers/CMakeFiles/coursenav_parsers.dir/transcript_parser.cc.o" "gcc" "src/parsers/CMakeFiles/coursenav_parsers.dir/transcript_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/coursenav_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/coursenav_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/coursenav_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coursenav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcoursenav_parsers.a"
)

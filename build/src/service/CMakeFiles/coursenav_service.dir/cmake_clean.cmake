file(REMOVE_RECURSE
  "CMakeFiles/coursenav_service.dir/navigator.cc.o"
  "CMakeFiles/coursenav_service.dir/navigator.cc.o.d"
  "CMakeFiles/coursenav_service.dir/robustness.cc.o"
  "CMakeFiles/coursenav_service.dir/robustness.cc.o.d"
  "CMakeFiles/coursenav_service.dir/session.cc.o"
  "CMakeFiles/coursenav_service.dir/session.cc.o.d"
  "CMakeFiles/coursenav_service.dir/visualizer.cc.o"
  "CMakeFiles/coursenav_service.dir/visualizer.cc.o.d"
  "libcoursenav_service.a"
  "libcoursenav_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coursenav_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcoursenav_service.a"
)

# Empty dependencies file for coursenav_service.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/catalog/CMakeFiles/coursenav_catalog.dir/catalog.cc.o" "gcc" "src/catalog/CMakeFiles/coursenav_catalog.dir/catalog.cc.o.d"
  "/root/repo/src/catalog/schedule.cc" "src/catalog/CMakeFiles/coursenav_catalog.dir/schedule.cc.o" "gcc" "src/catalog/CMakeFiles/coursenav_catalog.dir/schedule.cc.o.d"
  "/root/repo/src/catalog/schedule_history.cc" "src/catalog/CMakeFiles/coursenav_catalog.dir/schedule_history.cc.o" "gcc" "src/catalog/CMakeFiles/coursenav_catalog.dir/schedule_history.cc.o.d"
  "/root/repo/src/catalog/term.cc" "src/catalog/CMakeFiles/coursenav_catalog.dir/term.cc.o" "gcc" "src/catalog/CMakeFiles/coursenav_catalog.dir/term.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/coursenav_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coursenav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for coursenav_catalog.
# This may be replaced when dependencies are built.

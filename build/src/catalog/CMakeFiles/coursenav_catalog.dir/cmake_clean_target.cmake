file(REMOVE_RECURSE
  "libcoursenav_catalog.a"
)

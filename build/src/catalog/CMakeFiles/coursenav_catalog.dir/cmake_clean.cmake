file(REMOVE_RECURSE
  "CMakeFiles/coursenav_catalog.dir/catalog.cc.o"
  "CMakeFiles/coursenav_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/coursenav_catalog.dir/schedule.cc.o"
  "CMakeFiles/coursenav_catalog.dir/schedule.cc.o.d"
  "CMakeFiles/coursenav_catalog.dir/schedule_history.cc.o"
  "CMakeFiles/coursenav_catalog.dir/schedule_history.cc.o.d"
  "CMakeFiles/coursenav_catalog.dir/term.cc.o"
  "CMakeFiles/coursenav_catalog.dir/term.cc.o.d"
  "libcoursenav_catalog.a"
  "libcoursenav_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coursenav_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

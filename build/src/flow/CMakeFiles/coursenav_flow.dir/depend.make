# Empty dependencies file for coursenav_flow.
# This may be replaced when dependencies are built.

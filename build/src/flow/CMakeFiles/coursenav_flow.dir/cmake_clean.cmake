file(REMOVE_RECURSE
  "CMakeFiles/coursenav_flow.dir/bipartite.cc.o"
  "CMakeFiles/coursenav_flow.dir/bipartite.cc.o.d"
  "CMakeFiles/coursenav_flow.dir/flow_network.cc.o"
  "CMakeFiles/coursenav_flow.dir/flow_network.cc.o.d"
  "libcoursenav_flow.a"
  "libcoursenav_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coursenav_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

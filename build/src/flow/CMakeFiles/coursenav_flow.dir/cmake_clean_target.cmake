file(REMOVE_RECURSE
  "libcoursenav_flow.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/analytics.cc" "src/graph/CMakeFiles/coursenav_graph.dir/analytics.cc.o" "gcc" "src/graph/CMakeFiles/coursenav_graph.dir/analytics.cc.o.d"
  "/root/repo/src/graph/export.cc" "src/graph/CMakeFiles/coursenav_graph.dir/export.cc.o" "gcc" "src/graph/CMakeFiles/coursenav_graph.dir/export.cc.o.d"
  "/root/repo/src/graph/learning_graph.cc" "src/graph/CMakeFiles/coursenav_graph.dir/learning_graph.cc.o" "gcc" "src/graph/CMakeFiles/coursenav_graph.dir/learning_graph.cc.o.d"
  "/root/repo/src/graph/path.cc" "src/graph/CMakeFiles/coursenav_graph.dir/path.cc.o" "gcc" "src/graph/CMakeFiles/coursenav_graph.dir/path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/coursenav_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coursenav_util.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/coursenav_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

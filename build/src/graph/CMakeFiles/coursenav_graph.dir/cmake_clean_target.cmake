file(REMOVE_RECURSE
  "libcoursenav_graph.a"
)

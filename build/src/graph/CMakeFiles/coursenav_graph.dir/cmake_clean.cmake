file(REMOVE_RECURSE
  "CMakeFiles/coursenav_graph.dir/analytics.cc.o"
  "CMakeFiles/coursenav_graph.dir/analytics.cc.o.d"
  "CMakeFiles/coursenav_graph.dir/export.cc.o"
  "CMakeFiles/coursenav_graph.dir/export.cc.o.d"
  "CMakeFiles/coursenav_graph.dir/learning_graph.cc.o"
  "CMakeFiles/coursenav_graph.dir/learning_graph.cc.o.d"
  "CMakeFiles/coursenav_graph.dir/path.cc.o"
  "CMakeFiles/coursenav_graph.dir/path.cc.o.d"
  "libcoursenav_graph.a"
  "libcoursenav_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coursenav_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for coursenav_graph.
# This may be replaced when dependencies are built.

# Empty dependencies file for coursenav_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/coursenav_core.dir/combinations.cc.o"
  "CMakeFiles/coursenav_core.dir/combinations.cc.o.d"
  "CMakeFiles/coursenav_core.dir/counting.cc.o"
  "CMakeFiles/coursenav_core.dir/counting.cc.o.d"
  "CMakeFiles/coursenav_core.dir/deadline_generator.cc.o"
  "CMakeFiles/coursenav_core.dir/deadline_generator.cc.o.d"
  "CMakeFiles/coursenav_core.dir/engine.cc.o"
  "CMakeFiles/coursenav_core.dir/engine.cc.o.d"
  "CMakeFiles/coursenav_core.dir/enrollment.cc.o"
  "CMakeFiles/coursenav_core.dir/enrollment.cc.o.d"
  "CMakeFiles/coursenav_core.dir/filters.cc.o"
  "CMakeFiles/coursenav_core.dir/filters.cc.o.d"
  "CMakeFiles/coursenav_core.dir/goal_generator.cc.o"
  "CMakeFiles/coursenav_core.dir/goal_generator.cc.o.d"
  "CMakeFiles/coursenav_core.dir/pruning.cc.o"
  "CMakeFiles/coursenav_core.dir/pruning.cc.o.d"
  "CMakeFiles/coursenav_core.dir/ranked_generator.cc.o"
  "CMakeFiles/coursenav_core.dir/ranked_generator.cc.o.d"
  "CMakeFiles/coursenav_core.dir/ranking.cc.o"
  "CMakeFiles/coursenav_core.dir/ranking.cc.o.d"
  "CMakeFiles/coursenav_core.dir/stats.cc.o"
  "CMakeFiles/coursenav_core.dir/stats.cc.o.d"
  "libcoursenav_core.a"
  "libcoursenav_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coursenav_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

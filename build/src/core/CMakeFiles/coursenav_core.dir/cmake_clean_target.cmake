file(REMOVE_RECURSE
  "libcoursenav_core.a"
)

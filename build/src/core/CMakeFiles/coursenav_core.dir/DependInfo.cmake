
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/combinations.cc" "src/core/CMakeFiles/coursenav_core.dir/combinations.cc.o" "gcc" "src/core/CMakeFiles/coursenav_core.dir/combinations.cc.o.d"
  "/root/repo/src/core/counting.cc" "src/core/CMakeFiles/coursenav_core.dir/counting.cc.o" "gcc" "src/core/CMakeFiles/coursenav_core.dir/counting.cc.o.d"
  "/root/repo/src/core/deadline_generator.cc" "src/core/CMakeFiles/coursenav_core.dir/deadline_generator.cc.o" "gcc" "src/core/CMakeFiles/coursenav_core.dir/deadline_generator.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/coursenav_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/coursenav_core.dir/engine.cc.o.d"
  "/root/repo/src/core/enrollment.cc" "src/core/CMakeFiles/coursenav_core.dir/enrollment.cc.o" "gcc" "src/core/CMakeFiles/coursenav_core.dir/enrollment.cc.o.d"
  "/root/repo/src/core/filters.cc" "src/core/CMakeFiles/coursenav_core.dir/filters.cc.o" "gcc" "src/core/CMakeFiles/coursenav_core.dir/filters.cc.o.d"
  "/root/repo/src/core/goal_generator.cc" "src/core/CMakeFiles/coursenav_core.dir/goal_generator.cc.o" "gcc" "src/core/CMakeFiles/coursenav_core.dir/goal_generator.cc.o.d"
  "/root/repo/src/core/pruning.cc" "src/core/CMakeFiles/coursenav_core.dir/pruning.cc.o" "gcc" "src/core/CMakeFiles/coursenav_core.dir/pruning.cc.o.d"
  "/root/repo/src/core/ranked_generator.cc" "src/core/CMakeFiles/coursenav_core.dir/ranked_generator.cc.o" "gcc" "src/core/CMakeFiles/coursenav_core.dir/ranked_generator.cc.o.d"
  "/root/repo/src/core/ranking.cc" "src/core/CMakeFiles/coursenav_core.dir/ranking.cc.o" "gcc" "src/core/CMakeFiles/coursenav_core.dir/ranking.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/coursenav_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/coursenav_core.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/coursenav_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/coursenav_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/coursenav_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/coursenav_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/requirements/CMakeFiles/coursenav_requirements.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coursenav_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

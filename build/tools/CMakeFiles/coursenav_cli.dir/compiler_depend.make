# Empty compiler generated dependencies file for coursenav_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/coursenav_cli.dir/coursenav_cli.cc.o"
  "CMakeFiles/coursenav_cli.dir/coursenav_cli.cc.o.d"
  "coursenav"
  "coursenav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coursenav_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Headline harness for the data-oriented hot path: frontier-batched
// pruning and DNF evaluation against a faithful replica of the pre-batching
// scalar path (node-at-a-time clause walks over per-clause bitsets, with
// the same per-candidate temporaries the old code allocated, pinned to the
// portable scalar kernel table). Run at 38 / 1,000 / 10,000 synthetic
// courses; `--json-out=BENCH_simd_speedup.json` records the trajectory.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "core/options.h"
#include "core/pruning.h"
#include "data/synthetic.h"
#include "expr/dnf.h"
#include "requirements/expr_goal.h"
#include "util/bitset.h"
#include "util/random.h"
#include "util/simd/simd.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace coursenav {
namespace {

using internal::CandidateBatch;
using internal::ExplorationEngine;
using internal::PruningOracle;

/// Pre-PR `Dnf::MinAdditionalCourses`: per-clause bitset walk with an
/// allocated `missing` temporary, forced onto the scalar kernel table.
int PreprMinAdditional(const std::vector<expr::DnfClause>& clauses,
                       const DynamicBitset& completed) {
  const simd::Kernels& k = simd::Scalar();
  const size_t n = completed.word_count();
  int best = expr::Dnf::kUnreachable;
  for (const expr::DnfClause& clause : clauses) {
    if (k.intersects(clause.negative.word_data(), completed.word_data(), n)) {
      continue;  // dead clause
    }
    DynamicBitset missing = clause.positive;
    k.subtract_inplace(missing.mutable_word_data(), completed.word_data(), n);
    best = std::min(best, k.popcount(missing.word_data(), n));
  }
  return best;
}

/// Pre-PR `Dnf::AchievableWith`: allocates the reachable union, then walks
/// clauses with scalar subset tests.
bool PreprAchievable(const std::vector<expr::DnfClause>& clauses,
                     const DynamicBitset& completed,
                     const DynamicBitset& available) {
  const simd::Kernels& k = simd::Scalar();
  const size_t n = completed.word_count();
  DynamicBitset reachable = completed;
  k.union_inplace(reachable.mutable_word_data(), available.word_data(), n);
  for (const expr::DnfClause& clause : clauses) {
    if (k.intersects(clause.negative.word_data(), completed.word_data(), n)) {
      continue;
    }
    if (k.subset_of(clause.positive.word_data(), reachable.word_data(), n)) {
      return true;
    }
  }
  return false;
}

/// Pre-PR `PruningOracle::ClassifyChild` shape (monotone goal, cache off):
/// Equation 1 fast bound, exact clause-walk bound, then availability.
PruningOracle::Verdict PreprClassify(
    const std::vector<expr::DnfClause>& clauses,
    const DynamicBitset& child_completed, int selection_size, int child_bound,
    int left_parent, const DynamicBitset& available) {
  if (left_parent - selection_size > child_bound) {
    return PruningOracle::Verdict::kPrunedTime;
  }
  bool needs_exact = !(left_parent <= child_bound);
  if (needs_exact &&
      PreprMinAdditional(clauses, child_completed) > child_bound) {
    return PruningOracle::Verdict::kPrunedTime;
  }
  if (!PreprAchievable(clauses, child_completed, available)) {
    return PruningOracle::Verdict::kPrunedAvailability;
  }
  return PruningOracle::Verdict::kKeep;
}

struct ScaleResult {
  int courses = 0;
  size_t words = 0;
  size_t candidates = 0;
  double dnf_prepr_seconds = 0;
  double dnf_batched_seconds = 0;
  double prune_prepr_seconds = 0;
  double prune_batched_seconds = 0;
  double dnf_speedup = 0;
  double prune_speedup = 0;
};

ScaleResult RunScale(int num_courses, const bench::BenchArgs& args) {
  data::SyntheticConfig config;
  config.num_courses = num_courses;
  config.num_intro_courses = std::max(5, num_courses / 10);
  config.seed = 7;
  auto bundle = data::BuildSyntheticCatalog(config);
  if (!bundle.ok()) {
    std::fprintf(stderr, "synthetic catalog failed: %s\n",
                 bundle.status().ToString().c_str());
    std::exit(1);
  }
  const Catalog& catalog = bundle->catalog;

  // A monotone 16-course goal spread across the catalog: enough clauses in
  // play to make the exact bound non-trivial, fully positive so the time
  // phase exercises the packed-matrix kernel.
  std::vector<std::string> codes;
  for (int i = 0; i < 16; ++i) {
    codes.push_back(StrFormat("SYN%03d", i * (num_courses / 16)));
  }
  auto goal_or = ExprGoal::CompleteAll(codes, catalog);
  if (!goal_or.ok()) {
    std::fprintf(stderr, "goal failed: %s\n",
                 goal_or.status().ToString().c_str());
    std::exit(1);
  }
  const ExprGoal& goal = **goal_or;
  const std::vector<expr::DnfClause>& clauses = goal.dnf().clauses();

  ExplorationOptions options;
  options.max_courses_per_term = 4;
  Term start = config.first_term;
  Term end = start + 6;
  ExplorationEngine engine(catalog, bundle->schedule, options, start, end);
  GoalDrivenConfig prune_config;
  prune_config.cache_availability_checks = false;  // measure kernels, not maps
  PruningOracle oracle(goal, engine, options, prune_config);

  // Workload: staged frontier batches of parent ∪ selection candidates.
  Random rng(99);
  const Term child_term = start + 1;
  const int child_bound =
      options.max_courses_per_term * (end - child_term);
  const DynamicBitset& available = engine.AvailableFrom(child_term);
  constexpr size_t kBatchesPerRound = 8;
  const int rounds =
      std::max(1, (args.full ? 20000000 : 4000000) / num_courses / 8);

  struct Parent {
    DynamicBitset completed;
    int left = 0;
    std::vector<DynamicBitset> selections;
  };
  std::vector<Parent> parents;
  for (size_t b = 0; b < kBatchesPerRound; ++b) {
    Parent parent{catalog.NewCourseSet(), 0, {}};
    const uint64_t universe = static_cast<uint64_t>(num_courses);
    for (int i = 0; i < num_courses / 8; ++i) {
      parent.completed.set(static_cast<int>(rng.Uniform(universe)));
    }
    parent.left = goal.MinCoursesRemaining(parent.completed);
    for (size_t c = 0; c < CandidateBatch::kDefaultCapacity; ++c) {
      DynamicBitset selection = catalog.NewCourseSet();
      int size = static_cast<int>(
          rng.Uniform(static_cast<uint64_t>(options.max_courses_per_term)));
      for (int s = 0; s <= size; ++s) {
        selection.set(static_cast<int>(rng.Uniform(universe)));
      }
      parent.selections.push_back(std::move(selection));
    }
    parents.push_back(std::move(parent));
  }

  ScaleResult result;
  result.courses = num_courses;
  result.words = (static_cast<size_t>(num_courses) + 63) / 64;
  result.candidates =
      kBatchesPerRound * CandidateBatch::kDefaultCapacity *
      static_cast<size_t>(rounds);

  // --- DNF evaluation: pre-PR clause walk vs packed batch kernel. ---
  int64_t checksum_prepr = 0;
  {
    Stopwatch timer;
    for (int r = 0; r < rounds; ++r) {
      for (const Parent& parent : parents) {
        for (const DynamicBitset& selection : parent.selections) {
          DynamicBitset child = parent.completed;  // pre-PR temp
          child |= selection;
          checksum_prepr += PreprMinAdditional(clauses, child);
        }
      }
    }
    result.dnf_prepr_seconds = timer.ElapsedSeconds();
  }
  int64_t checksum_batched = 0;
  {
    CandidateBatch batch;
    batch.Configure(catalog.size());
    std::vector<int> bounds(CandidateBatch::kDefaultCapacity);
    Stopwatch timer;
    for (int r = 0; r < rounds; ++r) {
      for (const Parent& parent : parents) {
        batch.Clear();
        for (const DynamicBitset& selection : parent.selections) {
          batch.Push(parent.completed, selection);
        }
        goal.dnf().MinAdditionalCoursesBatch(batch.completed_row(0),
                                             batch.word_stride(),
                                             batch.size(), bounds.data());
        for (size_t i = 0; i < batch.size(); ++i) checksum_batched += bounds[i];
      }
    }
    result.dnf_batched_seconds = timer.ElapsedSeconds();
  }
  if (checksum_prepr != checksum_batched) {
    std::fprintf(stderr, "DNF checksum mismatch: %lld vs %lld\n",
                 static_cast<long long>(checksum_prepr),
                 static_cast<long long>(checksum_batched));
    std::exit(1);
  }

  // --- Batched pruning classification vs the pre-PR per-candidate path. ---
  int64_t verdict_checksum_prepr = 0;
  {
    Stopwatch timer;
    for (int r = 0; r < rounds; ++r) {
      for (const Parent& parent : parents) {
        for (const DynamicBitset& selection : parent.selections) {
          DynamicBitset child = parent.completed;
          child |= selection;
          verdict_checksum_prepr += static_cast<int>(
              PreprClassify(clauses, child, selection.count(), child_bound,
                            parent.left, available));
        }
      }
    }
    result.prune_prepr_seconds = timer.ElapsedSeconds();
  }
  int64_t verdict_checksum_batched = 0;
  {
    CandidateBatch batch;
    batch.Configure(catalog.size());
    std::vector<PruningOracle::Verdict> verdicts;
    Stopwatch timer;
    for (int r = 0; r < rounds; ++r) {
      for (const Parent& parent : parents) {
        batch.Clear();
        for (const DynamicBitset& selection : parent.selections) {
          batch.Push(parent.completed, selection);
        }
        oracle.ClassifyBatch(batch, child_term, parent.left, &verdicts);
        for (PruningOracle::Verdict v : verdicts) {
          verdict_checksum_batched += static_cast<int>(v);
        }
      }
    }
    result.prune_batched_seconds = timer.ElapsedSeconds();
  }
  if (verdict_checksum_prepr != verdict_checksum_batched) {
    std::fprintf(stderr, "verdict checksum mismatch: %lld vs %lld\n",
                 static_cast<long long>(verdict_checksum_prepr),
                 static_cast<long long>(verdict_checksum_batched));
    std::exit(1);
  }

  result.dnf_speedup = result.dnf_prepr_seconds / result.dnf_batched_seconds;
  result.prune_speedup =
      result.prune_prepr_seconds / result.prune_batched_seconds;
  return result;
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  using namespace coursenav;
  bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchReport report("simd_speedup", args);

  std::printf("simd_speedup: batched pruning / DNF vs pre-PR scalar path\n");
  std::printf("active kernels: %s\n\n", simd::Active().name);
  std::printf(
      "%8s %6s %10s | %12s %12s %8s | %12s %12s %8s\n", "courses", "words",
      "candidates", "dnf prepr", "dnf batched", "speedup", "prune prepr",
      "prune batched", "speedup");
  for (int courses : {38, 1000, 10000}) {
    ScaleResult r = RunScale(courses, args);
    std::printf(
        "%8d %6zu %10zu | %10.4fs %10.4fs %7.2fx | %10.4fs %10.4fs %7.2fx\n",
        r.courses, r.words, r.candidates, r.dnf_prepr_seconds,
        r.dnf_batched_seconds, r.dnf_speedup, r.prune_prepr_seconds,
        r.prune_batched_seconds, r.prune_speedup);
    JsonValue::Object row;
    row["courses"] = r.courses;
    row["words"] = static_cast<int64_t>(r.words);
    row["candidates"] = static_cast<int64_t>(r.candidates);
    row["kernels"] = std::string(simd::Active().name);
    row["dnf_prepr_seconds"] = r.dnf_prepr_seconds;
    row["dnf_batched_seconds"] = r.dnf_batched_seconds;
    row["dnf_speedup"] = r.dnf_speedup;
    row["prune_prepr_seconds"] = r.prune_prepr_seconds;
    row["prune_batched_seconds"] = r.prune_batched_seconds;
    row["prune_speedup"] = r.prune_speedup;
    report.AddRow(std::move(row));
  }
  if (!args.json_out.empty() && !report.WriteTo(args.json_out)) {
    std::fprintf(stderr, "failed to write %s\n", args.json_out.c_str());
    return 1;
  }
  return 0;
}

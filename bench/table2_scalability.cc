// Reproduces the paper's Table 2: deadline-driven vs. goal-driven learning
// path generation across academic periods of 4-7 semesters (deadline fixed
// at Fall 2015, fresh student, m = 3).
//
// Paper numbers: deadline-driven 740,677 paths / 17.9 s (4 sem) and
// 971,128 / 20.1 s (5 sem), N/A at >= 6 (graph exceeds memory);
// goal-driven 1,979 (4), 3,791 (5), 41,556,657 (6), 50,960,005 (7).
//
// We reproduce the shape: goal-driven output is orders of magnitude
// smaller than deadline-driven for the same period; materialization hits
// the memory budget for long periods (the "N/A" cells); and the goal-path
// population explodes into the tens/hundreds of millions for 6+ semesters.
// Cells the materializer cannot hold are *counted* instead with the
// DAG-memoized counter (an extension the paper did not have), under a time
// budget. `--full` raises every budget.

#include <cstdio>
#include <optional>
#include <utility>

#include "bench/bench_util.h"
#include "core/counting.h"
#include "data/brandeis_cs.h"
#include "plan/executor.h"
#include "plan/request.h"
#include "util/check.h"

namespace coursenav {
namespace {

/// Runs one materializing request through the planner pipeline and unwraps
/// the generation payload (deadline- and goal-driven requests always
/// populate it).
Result<GenerationResult> Materialize(const data::BrandeisDataset& dataset,
                                     const ExplorationRequest& request) {
  COURSENAV_ASSIGN_OR_RETURN(
      ExplorationResponse response,
      plan::Execute(dataset.catalog, dataset.schedule, request));
  CN_CHECK(response.generation.has_value());
  return std::move(*response.generation);
}

std::string MaterializedCell(const Result<GenerationResult>& result) {
  if (!result.ok()) return "error";
  if (!result->termination.ok()) return "N/A (memory budget)";
  return bench::WithCommas(
      static_cast<uint64_t>(result->stats.terminal_paths));
}

std::string MaterializedTime(const Result<GenerationResult>& result) {
  if (!result.ok() || !result->termination.ok()) return "-";
  return bench::Seconds(result->stats.runtime_seconds);
}

std::string CountCell(const Result<CountingResult>& result) {
  if (!result.ok()) return "> budget";
  return bench::WithCommas(result->total_paths);
}

void Run(const bench::BenchArgs& args) {
  std::optional<bench::StageProfiler> profiler;
  if (args.profile) profiler.emplace();

  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();
  bench::BenchReport report("table2_scalability", args);

  std::printf("Table 2: deadline-driven vs. goal-driven scalability\n");
  std::printf("(fresh student, m = 3, deadline %s, threads = %d; DAG count\n"
              " column is an extension for cells whose graph exceeds the\n"
              " memory budget)\n\n",
              end.ToString().c_str(), args.threads);

  bench::TextTable table({"semesters", "deadline: paths", "deadline: sec",
                          "deadline: DAG count", "goal: paths", "goal: sec",
                          "goal: DAG count"});

  for (int span : {4, 5, 6, 7}) {
    EnrollmentStatus start{data::StartTermForSpan(span),
                           dataset.catalog.NewCourseSet()};

    // One declarative request per Table 2 cell; the two modes differ only
    // in task type and goal. Materialization budget: the deliberate
    // analogue of the paper's "could not store the graph in memory".
    ExplorationRequest request;
    request.start = start;
    request.end_term = end;
    request.options.num_threads = args.threads;
    request.options.limits.max_nodes = args.full ? 20'000'000 : 3'000'000;
    request.options.limits.max_memory_bytes =
        args.full ? (8ull << 30) : (1ull << 30);

    request.type = TaskType::kDeadlineDriven;
    auto deadline = Materialize(dataset, request);
    request.type = TaskType::kGoalDriven;
    request.goal = dataset.cs_major;
    auto goal = Materialize(dataset, request);

    // Counting budgets grow with the span; the biggest configurations are
    // only attempted under --full (the paper's 6-semester goal run took
    // 1,845 s on their hardware; ours is bounded instead). Deadline counts
    // beyond 5 semesters are known-hopeless and get a short budget; the
    // 6-semester *goal* count is the paper's headline 41M cell and gets a
    // generous one.
    ExplorationOptions deadline_count_options;
    deadline_count_options.limits.max_seconds =
        args.full ? 900.0 : (span <= 5 ? 45.0 : 20.0);
    ExplorationOptions goal_count_options;
    goal_count_options.limits.max_seconds =
        args.full ? 900.0 : (span <= 5 ? 45.0 : span == 6 ? 240.0 : 60.0);
    auto deadline_count = CountDeadlineDrivenPaths(
        dataset.catalog, dataset.schedule, start, end,
        deadline_count_options);
    auto goal_count = CountGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                           start, end, *dataset.cs_major,
                                           goal_count_options);

    table.AddRow({std::to_string(span), MaterializedCell(deadline),
                  MaterializedTime(deadline), CountCell(deadline_count),
                  MaterializedCell(goal), MaterializedTime(goal),
                  CountCell(goal_count)});

    auto report_row = [&](const char* mode,
                          const Result<GenerationResult>& result) {
      if (!result.ok()) return;
      JsonValue::Object row;
      row["semesters"] = span;
      row["mode"] = mode;
      row["threads"] = args.threads;
      row["runtime_seconds"] = result->stats.runtime_seconds;
      row["nodes"] = result->stats.nodes_created;
      row["terminal_paths"] = result->stats.terminal_paths;
      row["goal_paths"] = result->stats.goal_paths;
      row["complete"] = result->termination.ok();
      report.AddRow(std::move(row));
    };
    report_row("deadline", deadline);
    report_row("goal", goal);
  }
  table.Print();
  report.WriteIfRequested(args);
  std::printf(
      "\nPaper shape check: goal-driven output is orders of magnitude\n"
      "smaller than deadline-driven per period; materialization hits the\n"
      "memory budget on long periods (paper's N/A cells); goal-path counts\n"
      "explode beyond visualizable sizes at 6+ semesters.\n");
  if (profiler.has_value()) profiler->Print();
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  coursenav::bench::BenchArgs args =
      coursenav::bench::BenchArgs::Parse(argc, argv);
  coursenav::Run(args);
  return 0;
}

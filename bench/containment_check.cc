// Reproduces the paper's §5.2 "Comparison with Existing Learning Paths"
// experiment: build student learning paths (the paper had 83 anonymized
// Brandeis transcripts, Fall '12 - Fall '15; we simulate them — see
// DESIGN.md) and verify every one of them is contained in the goal-driven
// generator's output for the same period, while the generator offers
// millions of additional alternatives.
//
// Containment for the full 6-semester period is checked against the
// generator's *rules* (the materialized 6-semester graph is exactly what
// the paper could not hold either): a path is generated iff every step
// elects a subset of the status's option set under the skip rule, no
// proper prefix already satisfies the goal, and the final status does.
// For the 4-semester period the check is additionally done by brute force
// against the fully materialized path set.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/counting.h"
#include "core/engine.h"
#include "core/enrollment.h"
#include "core/goal_generator.h"
#include "data/brandeis_cs.h"
#include "data/transcripts.h"
#include "graph/path.h"

namespace coursenav {
namespace {

/// Membership test against the goal-driven generator's construction rules.
bool WouldBeGenerated(const LearningPath& path, const Catalog& catalog,
                      const OfferingSchedule& schedule, const Goal& goal,
                      Term end_term, const ExplorationOptions& options) {
  if (!path.Validate(catalog, schedule).ok()) return false;
  internal::ExplorationEngine engine(catalog, schedule, options,
                                     path.start_term(), end_term);
  DynamicBitset completed = path.start_completed();
  for (const PathStep& step : path.steps()) {
    if (goal.IsSatisfied(completed)) return false;  // generator stops here
    if (step.term >= end_term) return false;
    DynamicBitset electable =
        ComputeOptions(catalog, schedule, completed, step.term, options);
    if (step.selection.empty()) {
      bool skip_allowed =
          options.allow_voluntary_skip ||
          (electable.empty() &&
           engine.FutureCourseExists(completed, step.term));
      if (!skip_allowed) return false;
    } else {
      if (!step.selection.IsSubsetOf(electable)) return false;
      if (step.selection.count() > options.max_courses_per_term) return false;
    }
    completed |= step.selection;
  }
  return goal.IsSatisfied(completed);
}

void Run(const bench::BenchArgs& args) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();
  const int span = 6;  // the paper's Fall '12 -> Fall '15 period
  EnrollmentStatus start{data::StartTermForSpan(span),
                         dataset.catalog.NewCourseSet()};
  ExplorationOptions options;

  std::printf("Section 5.2: containment of student learning paths\n");
  std::printf("(simulated transcripts, %s -> %s, m = 3)\n\n",
              start.term.ToString().c_str(), end.ToString().c_str());

  data::TranscriptSimulationConfig sim;
  sim.num_students = 83;  // the paper's cohort size
  sim.seed = 2016;
  auto transcripts =
      data::SimulateTranscripts(dataset.catalog, dataset.schedule,
                                *dataset.cs_major, start, end, options, sim);
  if (!transcripts.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 transcripts.status().ToString().c_str());
    return;
  }

  int contained = 0;
  for (const LearningPath& path : *transcripts) {
    if (WouldBeGenerated(path, dataset.catalog, dataset.schedule,
                         *dataset.cs_major, end, options)) {
      ++contained;
    }
  }
  std::printf("student paths contained in generated set: %d / %d\n",
              contained, sim.num_students);

  // Scale context: how many goal paths exist for the same period.
  ExplorationOptions count_options;
  count_options.limits.max_seconds = args.full ? 900.0 : 90.0;
  auto count = CountGoalDrivenPaths(dataset.catalog, dataset.schedule, start,
                                    end, *dataset.cs_major, count_options);
  if (count.ok()) {
    std::printf("total goal-driven paths for the period: %s "
                "(%s distinct statuses, %.1f s)\n",
                bench::WithCommas(count->total_paths).c_str(),
                bench::WithCommas(
                    static_cast<uint64_t>(count->distinct_statuses))
                    .c_str(),
                count->runtime_seconds);
  } else {
    std::printf("total goal-driven paths for the period: > counting budget "
                "(%s)\n",
                count.status().ToString().c_str());
  }

  // Brute-force cross-check on the 4-semester period, where the whole goal
  // graph is materializable.
  const int small_span = 4;
  EnrollmentStatus small_start{data::StartTermForSpan(small_span),
                               dataset.catalog.NewCourseSet()};
  data::TranscriptSimulationConfig small_sim;
  small_sim.num_students = 25;
  small_sim.seed = 7;
  auto small_transcripts = data::SimulateTranscripts(
      dataset.catalog, dataset.schedule, *dataset.cs_major, small_start, end,
      options, small_sim);
  auto generated =
      GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule, small_start,
                              end, *dataset.cs_major, options);
  if (small_transcripts.ok() && generated.ok()) {
    std::vector<LearningPath> all_paths;
    for (NodeId leaf : generated->graph.GoalNodes()) {
      all_paths.push_back(LearningPath::FromGraph(generated->graph, leaf));
    }
    int brute_contained = 0;
    for (const LearningPath& transcript : *small_transcripts) {
      for (const LearningPath& candidate : all_paths) {
        if (candidate == transcript) {
          ++brute_contained;
          break;
        }
      }
    }
    std::printf(
        "\n4-semester brute-force cross-check: %d / %d student paths found "
        "among %s materialized goal paths\n",
        brute_contained, small_sim.num_students,
        bench::WithCommas(static_cast<uint64_t>(all_paths.size())).c_str());
  }

  std::printf(
      "\nPaper shape check: every student path is contained (83/83 in the\n"
      "paper), and the generator exposes millions of alternatives the\n"
      "students never considered.\n");
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  coursenav::bench::BenchArgs args =
      coursenav::bench::BenchArgs::Parse(argc, argv);
  coursenav::Run(args);
  return 0;
}

// Reproduces the paper's Table 1: goal-driven learning path generation with
// and without pruning, plus the §5.2 pruning breakdown (share of paths cut
// by the time-based vs. course-availability strategy).
//
// Paper numbers (Java, PowerEdge R320, real Brandeis data):
//   4 semesters: 1,979 paths / 1.011 s with pruning,
//                525,583 paths / 7.43 s without;
//   5 semesters: 3,791 paths / 1.295 s with pruning,
//                760,677 paths / 74.03 s without;
//   82% of pruned paths cut by the time strategy, 18% by availability.
//
// The synthetic catalog reproduces the *shape* (pruning removes the
// overwhelming majority of paths and most of the runtime; time-based
// pruning dominates), not the absolute counts. `--full` raises the
// no-pruning node budget.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "core/goal_generator.h"
#include "data/brandeis_cs.h"

namespace coursenav {
namespace {

void Run(const bench::BenchArgs& args) {
  std::optional<bench::StageProfiler> profiler;
  if (args.profile) profiler.emplace();
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();

  std::printf("Table 1: goal-driven path generation with vs. without "
              "pruning\n");
  std::printf("(CS major = 7 core + 5 electives, m = 3, deadline %s)\n\n",
              end.ToString().c_str());

  bench::TextTable table({"semesters", "pruning: paths", "pruning: sec",
                          "no pruning: paths", "no pruning: sec",
                          "time-pruned %", "avail-pruned %"});

  GoalDrivenConfig with_pruning;
  GoalDrivenConfig no_pruning;
  no_pruning.enable_time_pruning = false;
  no_pruning.enable_availability_pruning = false;
  no_pruning.enforce_min_selection = false;

  for (int span : {4, 5}) {
    EnrollmentStatus start{data::StartTermForSpan(span),
                           dataset.catalog.NewCourseSet()};

    ExplorationOptions options;
    options.limits.max_nodes = args.full ? 60'000'000 : 8'000'000;
    options.limits.max_memory_bytes = args.full ? (6ull << 30) : (2ull << 30);

    auto pruned = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                          start, end, *dataset.cs_major,
                                          options, with_pruning);
    auto unpruned = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                            start, end, *dataset.cs_major,
                                            options, no_pruning);
    if (!pruned.ok() || !unpruned.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   (!pruned.ok() ? pruned : unpruned)
                       .status()
                       .ToString()
                       .c_str());
      continue;
    }

    auto paths_cell = [](const GenerationResult& r) {
      std::string cell = bench::WithCommas(
          static_cast<uint64_t>(r.stats.terminal_paths));
      if (!r.termination.ok()) cell = "> " + cell + " (budget)";
      return cell;
    };
    double total_pruned =
        static_cast<double>(pruned->stats.TotalPruned());
    double time_share =
        total_pruned > 0
            ? 100.0 * static_cast<double>(pruned->stats.pruned_time) /
                  total_pruned
            : 0.0;

    table.AddRow({std::to_string(span), paths_cell(*pruned),
                  bench::Seconds(pruned->stats.runtime_seconds),
                  paths_cell(*unpruned),
                  bench::Seconds(unpruned->stats.runtime_seconds),
                  StrFormat("%.1f", time_share),
                  StrFormat("%.1f", 100.0 - time_share)});
  }
  table.Print();
  std::printf(
      "\nPaper shape check: with pruning, path counts and runtimes drop by\n"
      "orders of magnitude, and the time-based strategy accounts for the\n"
      "large majority of pruned work (paper: 82%% / 18%%).\n");
  if (profiler.has_value()) profiler->Print();
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  coursenav::bench::BenchArgs args =
      coursenav::bench::BenchArgs::Parse(argc, argv);
  coursenav::Run(args);
  return 0;
}

// Scaling sweep beyond the paper: the evaluation fixes the catalog at 38
// courses; this bench grows a synthetic catalog (same structural recipe)
// to probe how goal-driven generation and DAG counting scale with catalog
// size and with the per-semester load limit m — the knob behind the
// paper's selection-count formula sum_{i<=m} C(|Y_i|, i).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/counting.h"
#include "core/goal_generator.h"
#include "data/synthetic.h"
#include "requirements/expr_goal.h"

namespace coursenav {
namespace {

void Run(const bench::BenchArgs& args) {
  std::printf("Scaling sweep: goal-driven generation vs. catalog size and "
              "load limit\n(synthetic catalogs, 4-semester horizon, goal = "
              "the 6 intro-layer courses)\n\n");

  bench::TextTable table({"courses", "m", "goal paths", "nodes",
                          "generate sec", "DAG statuses", "count sec"});

  for (int num_courses : {20, 38, 80, 150}) {
    for (int m : {2, 3}) {
      if (num_courses >= 150 && m == 3 && !args.full) {
        table.AddRow({std::to_string(num_courses), std::to_string(m),
                      "(--full)", "-", "-", "-", "-"});
        continue;
      }
      data::SyntheticConfig config;
      config.num_courses = num_courses;
      config.num_intro_courses = 6;
      config.num_layers = 4;
      config.offering_probability = 0.35;
      config.seed = 2016;
      auto bundle = data::BuildSyntheticCatalog(config);
      if (!bundle.ok()) continue;

      std::vector<std::string> goal_codes;
      for (int i = 0; i < 6; ++i) {
        goal_codes.push_back(bundle->catalog.course(i).code);
      }
      auto goal = ExprGoal::CompleteAll(goal_codes, bundle->catalog);
      if (!goal.ok()) continue;

      ExplorationOptions options;
      options.max_courses_per_term = m;
      options.limits.max_nodes = 8'000'000;
      options.limits.max_seconds = 60.0;
      EnrollmentStatus start{config.first_term,
                             bundle->catalog.NewCourseSet()};
      Term end = config.first_term + 4;

      auto generated = GenerateGoalDrivenPaths(
          bundle->catalog, bundle->schedule, start, end, **goal, options);
      ExplorationOptions count_options = options;
      count_options.limits.max_nodes = 0;
      auto counted = CountGoalDrivenPaths(bundle->catalog, bundle->schedule,
                                          start, end, **goal, count_options);
      if (!generated.ok()) continue;

      std::string paths = bench::WithCommas(
          static_cast<uint64_t>(generated->stats.goal_paths));
      if (!generated->termination.ok()) paths = "> " + paths + " (budget)";
      table.AddRow(
          {std::to_string(num_courses), std::to_string(m), paths,
           bench::WithCommas(
               static_cast<uint64_t>(generated->stats.nodes_created)),
           bench::Seconds(generated->stats.runtime_seconds),
           counted.ok() ? bench::WithCommas(static_cast<uint64_t>(
                              counted->distinct_statuses))
                        : "> budget",
           counted.ok() ? bench::Seconds(counted->runtime_seconds) : "-"});
    }
  }
  table.Print();
  std::printf(
      "\nReading: growth is driven by the option-set size |Y| (via the\n"
      "selection count sum C(|Y|, i)) far more than by raw catalog size;\n"
      "m is the dominant exponent, matching the paper's §4.3 observation.\n");
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  coursenav::bench::BenchArgs args =
      coursenav::bench::BenchArgs::Parse(argc, argv);
  coursenav::Run(args);
  return 0;
}

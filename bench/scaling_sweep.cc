// Scaling sweep beyond the paper: the evaluation fixes the catalog at 38
// courses; this bench grows a synthetic catalog (same structural recipe)
// to probe how goal-driven generation and DAG counting scale with catalog
// size and with the per-semester load limit m — the knob behind the
// paper's selection-count formula sum_{i<=m} C(|Y_i|, i). A second section
// sweeps worker threads (serial baseline, then 1/2/4/8 workers) over a
// fixed configuration and reports speedup vs. serial, asserting the
// parallel runs reproduce the serial statistics exactly.

#include <cstdio>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/counting.h"
#include "core/goal_generator.h"
#include "data/synthetic.h"
#include "requirements/expr_goal.h"

namespace coursenav {
namespace {

/// Thread-scaling section: one fixed goal-driven configuration, run serial
/// first (num_threads = 0) and then with 1, 2, 4, 8 workers. Reports raw
/// runtime, speedup vs. the serial baseline, and whether the run produced
/// byte-identical exploration statistics — the determinism contract that
/// makes the speedup comparison meaningful.
void RunThreadSweep(bench::BenchReport& report) {
  data::SyntheticConfig config;
  // 38 courses, m = 3: ~680k nodes — the largest configuration in the
  // catalog sweep that completes within the node budget, so every thread
  // count produces the full graph and the speedups compare like for like.
  config.num_courses = 38;
  config.num_intro_courses = 6;
  config.num_layers = 4;
  config.offering_probability = 0.35;
  config.seed = 2016;
  auto bundle = data::BuildSyntheticCatalog(config);
  if (!bundle.ok()) return;

  std::vector<std::string> goal_codes;
  for (int i = 0; i < 6; ++i) {
    goal_codes.push_back(bundle->catalog.course(i).code);
  }
  auto goal = ExprGoal::CompleteAll(goal_codes, bundle->catalog);
  if (!goal.ok()) return;

  EnrollmentStatus start{config.first_term, bundle->catalog.NewCourseSet()};
  Term end = config.first_term + 4;

  std::printf("\nThread scaling: goal-driven generation, %d courses, m = 3\n"
              "(speedup vs. the serial baseline; stats must match serial "
              "exactly)\n\n",
              config.num_courses);

  bench::TextTable table(
      {"threads", "goal paths", "nodes", "sec", "speedup", "stats match"});
  double serial_seconds = 0.0;
  int64_t serial_goal_paths = 0;
  int64_t serial_nodes = 0;
  int64_t serial_terminal = 0;

  for (int threads : {0, 1, 2, 4, 8}) {
    ExplorationOptions options;
    options.max_courses_per_term = 3;
    options.num_threads = threads;
    options.limits.max_nodes = 8'000'000;
    options.limits.max_seconds = 120.0;
    auto generated = GenerateGoalDrivenPaths(
        bundle->catalog, bundle->schedule, start, end, **goal, options);
    if (!generated.ok() || !generated->termination.ok()) {
      table.AddRow({threads == 0 ? "serial" : std::to_string(threads),
                    "incomplete", "-", "-", "-", "-"});
      continue;
    }
    const ExplorationStats& stats = generated->stats;
    bool match = true;
    if (threads == 0) {
      serial_seconds = stats.runtime_seconds;
      serial_goal_paths = stats.goal_paths;
      serial_nodes = stats.nodes_created;
      serial_terminal = stats.terminal_paths;
    } else {
      match = stats.goal_paths == serial_goal_paths &&
              stats.nodes_created == serial_nodes &&
              stats.terminal_paths == serial_terminal;
    }
    double speedup = stats.runtime_seconds > 0.0
                         ? serial_seconds / stats.runtime_seconds
                         : 0.0;
    table.AddRow({threads == 0 ? "serial" : std::to_string(threads),
                  bench::WithCommas(static_cast<uint64_t>(stats.goal_paths)),
                  bench::WithCommas(
                      static_cast<uint64_t>(stats.nodes_created)),
                  bench::Seconds(stats.runtime_seconds),
                  threads == 0 ? "1.00x" : StrFormat("%.2fx", speedup),
                  match ? "yes" : "MISMATCH"});

    JsonValue::Object row;
    row["section"] = "thread_sweep";
    row["threads"] = threads;
    row["runtime_seconds"] = stats.runtime_seconds;
    row["speedup_vs_serial"] = speedup;
    row["nodes"] = stats.nodes_created;
    row["goal_paths"] = stats.goal_paths;
    row["stats_match_serial"] = match;
    report.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nReading: identical stats across thread counts demonstrate the\n"
      "determinism contract; speedup tracks available cores (a 1-core\n"
      "machine reports ~1x for every configuration).\n");
}

void Run(const bench::BenchArgs& args) {
  bench::BenchReport report("scaling_sweep", args);
  std::printf("Scaling sweep: goal-driven generation vs. catalog size and "
              "load limit\n(synthetic catalogs, 4-semester horizon, goal = "
              "the 6 intro-layer courses)\n\n");

  bench::TextTable table({"courses", "m", "goal paths", "nodes",
                          "generate sec", "DAG statuses", "count sec"});

  for (int num_courses : {20, 38, 80, 150}) {
    for (int m : {2, 3}) {
      if (num_courses >= 150 && m == 3 && !args.full) {
        table.AddRow({std::to_string(num_courses), std::to_string(m),
                      "(--full)", "-", "-", "-", "-"});
        continue;
      }
      data::SyntheticConfig config;
      config.num_courses = num_courses;
      config.num_intro_courses = 6;
      config.num_layers = 4;
      config.offering_probability = 0.35;
      config.seed = 2016;
      auto bundle = data::BuildSyntheticCatalog(config);
      if (!bundle.ok()) continue;

      std::vector<std::string> goal_codes;
      for (int i = 0; i < 6; ++i) {
        goal_codes.push_back(bundle->catalog.course(i).code);
      }
      auto goal = ExprGoal::CompleteAll(goal_codes, bundle->catalog);
      if (!goal.ok()) continue;

      ExplorationOptions options;
      options.max_courses_per_term = m;
      options.limits.max_nodes = 8'000'000;
      options.limits.max_seconds = 60.0;
      EnrollmentStatus start{config.first_term,
                             bundle->catalog.NewCourseSet()};
      Term end = config.first_term + 4;

      auto generated = GenerateGoalDrivenPaths(
          bundle->catalog, bundle->schedule, start, end, **goal, options);
      ExplorationOptions count_options = options;
      count_options.limits.max_nodes = 0;
      auto counted = CountGoalDrivenPaths(bundle->catalog, bundle->schedule,
                                          start, end, **goal, count_options);
      if (!generated.ok()) continue;

      JsonValue::Object row;
      row["section"] = "catalog_sweep";
      row["courses"] = num_courses;
      row["m"] = m;
      row["runtime_seconds"] = generated->stats.runtime_seconds;
      row["nodes"] = generated->stats.nodes_created;
      row["goal_paths"] = generated->stats.goal_paths;
      row["complete"] = generated->termination.ok();
      report.AddRow(std::move(row));

      std::string paths = bench::WithCommas(
          static_cast<uint64_t>(generated->stats.goal_paths));
      if (!generated->termination.ok()) paths = "> " + paths + " (budget)";
      table.AddRow(
          {std::to_string(num_courses), std::to_string(m), paths,
           bench::WithCommas(
               static_cast<uint64_t>(generated->stats.nodes_created)),
           bench::Seconds(generated->stats.runtime_seconds),
           counted.ok() ? bench::WithCommas(static_cast<uint64_t>(
                              counted->distinct_statuses))
                        : "> budget",
           counted.ok() ? bench::Seconds(counted->runtime_seconds) : "-"});
    }
  }
  table.Print();
  std::printf(
      "\nReading: growth is driven by the option-set size |Y| (via the\n"
      "selection count sum C(|Y|, i)) far more than by raw catalog size;\n"
      "m is the dominant exponent, matching the paper's §4.3 observation.\n");

  RunThreadSweep(report);
  report.WriteIfRequested(args);
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  coursenav::bench::BenchArgs args =
      coursenav::bench::BenchArgs::Parse(argc, argv);
  coursenav::Run(args);
  return 0;
}

// Measures the abstraction cost of the planner/executor pipeline on the
// Table 2 workloads (fresh student, m = 3, deadline Fall 2015): the public
// facade path (build an ExplorationRequest, lower it with Planner::Lower,
// run the plan) versus a pre-lowered plan handed straight to
// Executor::Run, plus the cost of lowering alone. The facades and the
// pre-lowered run drive the exact same engine on byte-identical graphs
// (tests/plan_test.cc), so any runtime gap *is* the pipeline's overhead.
//
// Acceptance bar: overhead < 2% on every workload. The report is written
// to BENCH_plan_overhead.json (override with --json-out=...).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/deadline_generator.h"
#include "core/goal_generator.h"
#include "data/brandeis_cs.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "plan/request.h"
#include "util/stopwatch.h"

namespace coursenav {
namespace {

constexpr double kOverheadBudgetPercent = 2.0;

/// Interleaved A/B timing: alternates the two bodies within every repeat
/// (plus one untimed warm-up of each) and reports each side's best wall
/// time in seconds. Interleaving makes allocator warm-up, page faults, and
/// frequency drift hit both sides equally; the minimum — not the mean — is
/// the right statistic for an overhead bound, because scheduler noise only
/// ever adds time.
template <typename BodyA, typename BodyB>
std::pair<double, double> BestOfInterleaved(int repeats, const BodyA& a,
                                            const BodyB& b) {
  a();
  b();
  double best_a = -1.0;
  double best_b = -1.0;
  for (int i = 0; i < repeats; ++i) {
    Stopwatch watch;
    a();
    double elapsed_a = watch.ElapsedSeconds();
    watch.Reset();
    b();
    double elapsed_b = watch.ElapsedSeconds();
    if (best_a < 0.0 || elapsed_a < best_a) best_a = elapsed_a;
    if (best_b < 0.0 || elapsed_b < best_b) best_b = elapsed_b;
  }
  return {best_a, best_b};
}

struct Workload {
  std::string mode;  // "deadline" or "goal", Table 2's two columns
  int semesters = 0;
};

ExplorationRequest BuildRequest(const data::BrandeisDataset& dataset,
                                const Workload& workload,
                                const bench::BenchArgs& args) {
  ExplorationRequest request;
  request.start = EnrollmentStatus{data::StartTermForSpan(workload.semesters),
                                   dataset.catalog.NewCourseSet()};
  request.end_term = data::EvaluationEndTerm();
  request.options.num_threads = args.threads;
  // Table 2's materialization budget (the short-run variant); identical on
  // both sides of the comparison, so budget checks cancel out.
  request.options.limits.max_nodes = args.full ? 20'000'000 : 3'000'000;
  request.options.limits.max_memory_bytes =
      args.full ? (8ull << 30) : (1ull << 30);
  if (workload.mode == "goal") {
    request.type = TaskType::kGoalDriven;
    request.goal = dataset.cs_major;
  } else {
    request.type = TaskType::kDeadlineDriven;
  }
  return request;
}

void Run(const bench::BenchArgs& args) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  bench::BenchReport report("plan_overhead", args);

  // Repeats: the engine runs are the expensive part; lowering is
  // microseconds and gets a large fixed iteration count.
  const int engine_repeats = args.full ? 9 : 5;
  const int lower_iterations = 10'000;

  std::printf("Planner/executor abstraction overhead on the Table 2 "
              "workloads\n");
  std::printf("(fresh student, m = 3, deadline %s, threads = %d, "
              "best of %d runs)\n\n",
              data::EvaluationEndTerm().ToString().c_str(), args.threads,
              engine_repeats);

  // Deadline-driven past 4 semesters blows the short-run memory budget
  // (Table 2's N/A cells) and measures the budget sentinel, not the
  // pipeline; the goal-driven column stays materializable through 5.
  std::vector<Workload> workloads = {{"deadline", 4}, {"goal", 4},
                                     {"goal", 5}};
  if (args.full) workloads.push_back({"deadline", 5});

  bench::TextTable table({"mode", "semesters", "facade: sec",
                          "pre-lowered: sec", "lower-only: usec",
                          "overhead"});
  bool within_budget = true;

  for (const Workload& workload : workloads) {
    ExplorationRequest request = BuildRequest(dataset, workload, args);

    Result<plan::ExplorationPlan> lowered = plan::Planner::Lower(request);
    if (!lowered.ok()) std::abort();
    plan::Executor executor(&dataset.catalog, &dataset.schedule);

    // (a) The public facade path — request construction + lowering +
    // execution per call, exactly what every caller pays today — against
    // (b) the same work with lowering hoisted out: the closest observable
    // stand-in for the pre-refactor generators, which also started
    // straight at validation + engine construction.
    auto [facade_seconds, prelowered_seconds] = BestOfInterleaved(
        engine_repeats,
        [&] {
          Result<GenerationResult> result =
              workload.mode == "goal"
                  ? GenerateGoalDrivenPaths(
                        dataset.catalog, dataset.schedule, request.start,
                        request.end_term, *dataset.cs_major, request.options)
                  : GenerateDeadlineDrivenPaths(
                        dataset.catalog, dataset.schedule, request.start,
                        request.end_term, request.options);
          if (!result.ok()) std::abort();
        },
        [&] {
          Result<ExplorationResponse> response = executor.Run(*lowered);
          if (!response.ok()) std::abort();
        });

    // (c) Lowering alone, amortized over many iterations.
    double lower_micros;
    {
      Stopwatch watch;
      for (int i = 0; i < lower_iterations; ++i) {
        Result<plan::ExplorationPlan> plan = plan::Planner::Lower(request);
        if (!plan.ok()) std::abort();
      }
      lower_micros = static_cast<double>(watch.ElapsedMicros()) /
                     lower_iterations;
    }

    double overhead_percent =
        (facade_seconds - prelowered_seconds) / prelowered_seconds * 100.0;
    within_budget &= overhead_percent < kOverheadBudgetPercent;

    table.AddRow({workload.mode, std::to_string(workload.semesters),
                  bench::Seconds(facade_seconds),
                  bench::Seconds(prelowered_seconds),
                  StrFormat("%.1f", lower_micros),
                  StrFormat("%+.2f%%", overhead_percent)});

    JsonValue::Object row;
    row["mode"] = workload.mode;
    row["semesters"] = workload.semesters;
    row["threads"] = args.threads;
    row["facade_seconds"] = facade_seconds;
    row["prelowered_seconds"] = prelowered_seconds;
    row["lower_only_micros"] = lower_micros;
    row["overhead_percent"] = overhead_percent;
    row["within_budget"] = overhead_percent < kOverheadBudgetPercent;
    report.AddRow(std::move(row));
  }

  table.Print();
  std::printf("\n%s: every workload %s the %.0f%% overhead budget.\n",
              within_budget ? "PASS" : "FAIL",
              within_budget ? "is within" : "exceeds",
              kOverheadBudgetPercent);

  if (!args.json_out.empty()) {
    report.WriteTo(args.json_out);
  } else {
    report.WriteTo("BENCH_plan_overhead.json");
  }
  if (!within_budget) std::exit(1);
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  coursenav::bench::BenchArgs args =
      coursenav::bench::BenchArgs::Parse(argc, argv);
  coursenav::Run(args);
  return 0;
}

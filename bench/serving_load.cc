// Closed-loop serving benchmark: N concurrent sessions drive the
// in-process multi-tenant exploration server (src/serve/) back to back —
// each session issues its next request the moment the previous response
// lands. The workload mixes cheap interactive requests (F13 -> F15
// deadline exploration) with heavy ones (F12 -> F15 under a tight
// deadline) whose budgets blow up, so the sweep shows how p50/p99 latency
// and throughput respond to concurrency with the degradation ladder on
// versus off. Writes BENCH_serving.json (override with --json-out=).

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "cache/request_cache.h"
#include "data/brandeis_cs.h"
#include "plan/request.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/json.h"
#include "util/stopwatch.h"

namespace coursenav {
namespace {

/// One configuration's aggregate: latencies plus outcome counts.
struct SweepResult {
  std::vector<double> latencies_ms;
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t timeout = 0;
  int64_t overloaded = 0;
  int64_t other = 0;
  double wall_seconds = 0.0;
  /// Deadline-attainment tallies summed over the per-session tenants.
  int64_t slo_met = 0;
  int64_t slo_missed = 0;
  /// Request-cache outcomes reported in the response envelopes: identical
  /// asks repeat within and across sessions, so the warm share shows what
  /// the process-wide cache absorbs under serving load.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_bypass = 0;

  double attainment() const {
    const int64_t total = slo_met + slo_missed;
    return total > 0
               ? static_cast<double>(slo_met) / static_cast<double>(total)
               : 1.0;
  }
};

double PercentileMs(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

/// A cheap interactive request: 2-semester horizon, generous deadline.
std::string CheapEnvelope(int session, int sequence) {
  JsonValue::Object start;
  start["term"] = JsonValue("Fall 2013");
  JsonValue::Object request;
  request["start"] = JsonValue(std::move(start));
  request["end_term"] = JsonValue("Fall 2015");
  request["type"] = JsonValue("deadline");
  return serve::MakeRequestEnvelope(
             "session-" + std::to_string(session),
             "cheap-" + std::to_string(sequence), 2000.0,
             JsonValue(std::move(request)))
      .Dump();
}

/// A heavy request: the 6-semester F12 -> F15 blow-up under a 300 ms
/// deadline — guaranteed to exhaust its budget, so the server either
/// degrades it (ladder on) or answers a partial timeout (ladder off).
std::string HeavyEnvelope(int session, int sequence) {
  JsonValue::Object start;
  start["term"] = JsonValue("Fall 2012");
  JsonValue::Object request;
  request["start"] = JsonValue(std::move(start));
  request["end_term"] = JsonValue("Fall 2015");
  request["type"] = JsonValue("deadline");
  return serve::MakeRequestEnvelope(
             "session-" + std::to_string(session),
             "heavy-" + std::to_string(sequence), 300.0,
             JsonValue(std::move(request)))
      .Dump();
}

SweepResult RunConfiguration(const data::BrandeisDataset& dataset,
                             int sessions, bool degrade,
                             int requests_per_session) {
  // Each configuration starts cold so its warm share is self-contained
  // (the cache is process-wide and would otherwise carry across rows).
  cache::RequestCache::Global().Clear();
  serve::ServerConfig config;
  config.num_workers = 4;
  config.degrade_by_default = degrade;
  config.max_seconds_per_request = 2.0;
  serve::ExplorationServer server(&dataset.catalog, &dataset.schedule,
                                  config);
  server.Start();

  SweepResult result;
  std::mutex mu;
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(sessions));
  for (int session = 0; session < sessions; ++session) {
    threads.emplace_back([&, session] {
      serve::RetryPolicy policy;
      policy.jitter_seed = static_cast<uint64_t>(session) + 1;
      serve::TransportFn transport =
          [&server](std::string_view payload) {
            return server.HandleRequest(payload);
          };
      std::vector<double> latencies;
      int64_t ok = 0, degraded_count = 0, timeout = 0, overloaded = 0,
              other = 0;
      int64_t hits = 0, misses = 0, bypass = 0;
      for (int sequence = 0; sequence < requests_per_session; ++sequence) {
        // Every 4th request is the heavy one — a 25% hostile mix.
        std::string payload = (sequence % 4 == 3)
                                  ? HeavyEnvelope(session, sequence)
                                  : CheapEnvelope(session, sequence);
        Stopwatch latency;
        Result<serve::RetryResult> reply =
            serve::CallWithRetry(transport, payload, policy);
        latencies.push_back(latency.ElapsedSeconds() * 1e3);
        if (!reply.ok()) {
          ++other;
          continue;
        }
        if (reply->response.cache == "hit") {
          ++hits;
        } else if (reply->response.cache == "miss") {
          ++misses;
        } else if (reply->response.cache == "bypass") {
          ++bypass;
        }
        switch (reply->response.outcome) {
          case serve::ResponseOutcome::kOk:
            ++ok;
            break;
          case serve::ResponseOutcome::kDegraded:
            ++degraded_count;
            break;
          case serve::ResponseOutcome::kTimeout:
            ++timeout;
            break;
          case serve::ResponseOutcome::kOverloaded:
            ++overloaded;
            break;
          default:
            ++other;
            break;
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      result.latencies_ms.insert(result.latencies_ms.end(),
                                 latencies.begin(), latencies.end());
      result.ok += ok;
      result.degraded += degraded_count;
      result.timeout += timeout;
      result.overloaded += overloaded;
      result.other += other;
      result.cache_hits += hits;
      result.cache_misses += misses;
      result.cache_bypass += bypass;
    });
  }
  for (std::thread& thread : threads) thread.join();
  result.wall_seconds = wall.ElapsedSeconds();
  (void)server.Drain(2.0);
  for (const auto& [tenant, counters] : server.Stats().slo) {
    result.slo_met += counters.deadline_met;
    result.slo_missed += counters.deadline_missed;
  }
  std::sort(result.latencies_ms.begin(), result.latencies_ms.end());
  return result;
}

void Run(const bench::BenchArgs& args) {
  bench::BenchReport report("serving_load", args);
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();

  const int requests_per_session = args.full ? 32 : 16;
  std::vector<int> session_counts = {1, 2, 4, 8};
  if (args.full) session_counts.push_back(16);

  std::printf(
      "Serving load: closed-loop sessions against the in-process server\n"
      "(25%% of requests are the F12 -> F15 blow-up under a 300 ms "
      "deadline;\n%d requests per session)\n\n",
      requests_per_session);

  bench::TextTable table({"sessions", "degrade", "req/s", "p50 ms", "p99 ms",
                          "ok", "degraded", "timeout", "overloaded",
                          "slo %", "warm %"});
  for (bool degrade : {true, false}) {
    for (int sessions : session_counts) {
      SweepResult result = RunConfiguration(dataset, sessions, degrade,
                                            requests_per_session);
      const double total =
          static_cast<double>(sessions) * requests_per_session;
      const double throughput =
          total / std::max(result.wall_seconds, 1e-9);
      const double p50 = PercentileMs(result.latencies_ms, 0.50);
      const double p99 = PercentileMs(result.latencies_ms, 0.99);
      table.AddRow({std::to_string(sessions), degrade ? "on" : "off",
                    StrFormat("%.1f", throughput), StrFormat("%.1f", p50),
                    StrFormat("%.1f", p99), std::to_string(result.ok),
                    std::to_string(result.degraded),
                    std::to_string(result.timeout),
                    std::to_string(result.overloaded),
                    StrFormat("%.1f", result.attainment() * 100.0),
                    StrFormat("%.1f",
                              100.0 * static_cast<double>(result.cache_hits) /
                                  std::max(total, 1.0))});

      JsonValue::Object row;
      row["sessions"] = sessions;
      row["degrade"] = degrade;
      row["requests"] = static_cast<int64_t>(total);
      row["wall_seconds"] = result.wall_seconds;
      row["throughput_rps"] = throughput;
      row["p50_ms"] = p50;
      row["p99_ms"] = p99;
      row["ok"] = result.ok;
      row["degraded"] = result.degraded;
      row["timeout"] = result.timeout;
      row["overloaded"] = result.overloaded;
      row["other"] = result.other;
      row["slo_met"] = result.slo_met;
      row["slo_missed"] = result.slo_missed;
      row["slo_attainment"] = result.attainment();
      row["cache_hits"] = result.cache_hits;
      row["cache_misses"] = result.cache_misses;
      row["cache_bypass"] = result.cache_bypass;
      row["warm_fraction"] =
          static_cast<double>(result.cache_hits) / std::max(total, 1.0);
      report.AddRow(std::move(row));
    }
  }
  table.Print();
  std::printf(
      "\nReading: with the ladder on, heavy requests degrade into cheap\n"
      "count-only answers, so p99 stays near the degradation budget and\n"
      "throughput holds as sessions grow; with it off, the same requests\n"
      "burn their full deadline and p99 tracks the 300 ms timeout.\n");

  const std::string out =
      args.json_out.empty() ? "BENCH_serving.json" : args.json_out;
  report.WriteTo(out);
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  coursenav::Run(coursenav::bench::BenchArgs::Parse(argc, argv));
  return 0;
}

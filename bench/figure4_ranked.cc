// Reproduces the paper's Figure 4: runtime of the ranked (top-k shortest)
// learning paths algorithm, for k in {10, 100, 500, 1000} output paths and
// academic periods of 6, 7 and 8 semesters (time-based ranking, CS-major
// goal, deadline Fall 2015).
//
// Paper claim: even for an 8-semester period, generating 1,000 shortest
// paths stays interactive (<= ~25 s on their Java/R320 setup). The shape to
// reproduce: runtime grows mildly with k and with the period, and stays
// within interactive bounds — best-first search touches only a tiny
// corner of a graph whose full size is in the hundreds of millions.

#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "core/ranked_generator.h"
#include "data/brandeis_cs.h"
#include "util/stopwatch.h"

namespace coursenav {
namespace {

void Run(const bench::BenchArgs& args) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();
  TimeRanking ranking;
  bench::BenchReport report("figure4_ranked", args);

  std::printf("Figure 4: runtime (seconds) of ranked learning path "
              "generation\n");
  std::printf("(time-based ranking, CS-major goal, m = 3, deadline %s)\n\n",
              end.ToString().c_str());

  const std::vector<int> k_values = {10, 100, 500, 1000};
  const std::vector<int> spans = {6, 7, 8};

  // One row per k, one column (series) per period — the figure's x axis is
  // k, its three curves are the periods.
  std::map<std::pair<int, int>, double> seconds;
  bench::TextTable table({"# of output paths", "6 semesters", "7 semesters",
                          "8 semesters"});
  for (int k : k_values) {
    std::vector<std::string> row{std::to_string(k)};
    for (int span : spans) {
      EnrollmentStatus start{data::StartTermForSpan(span),
                             dataset.catalog.NewCourseSet()};
      // Ranked generation is order-dependent (best-first top-k) and always
      // runs serial; threads is recorded in the report for uniformity.
      ExplorationOptions options;
      auto result = GenerateRankedPaths(dataset.catalog, dataset.schedule,
                                        start, end, *dataset.cs_major,
                                        ranking, k, options);
      if (!result.ok()) {
        row.push_back("error");
        seconds[{span, k}] = -1.0;
        continue;
      }
      seconds[{span, k}] = result->stats.runtime_seconds;
      JsonValue::Object json_row;
      json_row["k"] = k;
      json_row["semesters"] = span;
      json_row["threads"] = args.threads;
      json_row["runtime_seconds"] = result->stats.runtime_seconds;
      json_row["nodes"] = result->stats.nodes_created;
      json_row["paths_returned"] =
          static_cast<int64_t>(result->paths.size());
      report.AddRow(std::move(json_row));
      row.push_back(StrFormat("%.3f (%zu paths)",
                              result->stats.runtime_seconds,
                              result->paths.size()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  report.WriteIfRequested(args);

  std::printf("\nCSV series (k, seconds) for plotting:\n");
  for (int span : spans) {
    std::printf("period_%d_semesters:", span);
    for (int k : k_values) {
      std::printf(" %d,%.3f", k, seconds[{span, k}]);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: all cells stay interactive (well under the\n"
      "paper's 25 s ceiling), growing mildly with k and period.\n");
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  coursenav::bench::BenchArgs args =
      coursenav::bench::BenchArgs::Parse(argc, argv);
  coursenav::Run(args);
  return 0;
}

// Reproduces the paper's Figure 4: runtime of the ranked (top-k shortest)
// learning paths algorithm, for k in {10, 100, 500, 1000} output paths and
// academic periods of 6, 7 and 8 semesters (time-based ranking, CS-major
// goal, deadline Fall 2015).
//
// Paper claim: even for an 8-semester period, generating 1,000 shortest
// paths stays interactive (<= ~25 s on their Java/R320 setup). The shape to
// reproduce: runtime grows mildly with k and with the period, and stays
// within interactive bounds — best-first search touches only a tiny
// corner of a graph whose full size is in the hundreds of millions.

#include <cstdio>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "data/brandeis_cs.h"
#include "plan/executor.h"
#include "plan/request.h"
#include "util/check.h"

namespace coursenav {
namespace {

void Run(const bench::BenchArgs& args) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();
  auto ranking = std::make_shared<const TimeRanking>();
  bench::BenchReport report("figure4_ranked", args);

  std::printf("Figure 4: runtime (seconds) of ranked learning path "
              "generation\n");
  std::printf("(time-based ranking, CS-major goal, m = 3, deadline %s)\n\n",
              end.ToString().c_str());

  const std::vector<int> k_values = {10, 100, 500, 1000};
  const std::vector<int> spans = {6, 7, 8};

  // One row per k, one column (series) per period — the figure's x axis is
  // k, its three curves are the periods.
  std::map<std::pair<int, int>, double> seconds;
  bench::TextTable table({"# of output paths", "6 semesters", "7 semesters",
                          "8 semesters"});
  for (int k : k_values) {
    std::vector<std::string> row{std::to_string(k)};
    for (int span : spans) {
      // One declarative ranked request per figure cell. Ranked plans are
      // lowered serial regardless of threads (best-first top-k is
      // order-dependent); threads is recorded in the report for
      // uniformity.
      ExplorationRequest request;
      request.start = EnrollmentStatus{data::StartTermForSpan(span),
                                       dataset.catalog.NewCourseSet()};
      request.end_term = end;
      request.type = TaskType::kRanked;
      request.goal = dataset.cs_major;
      request.ranking = ranking;
      request.top_k = k;
      auto response =
          plan::Execute(dataset.catalog, dataset.schedule, request);
      if (!response.ok()) {
        row.push_back("error");
        seconds[{span, k}] = -1.0;
        continue;
      }
      CN_CHECK(response->ranked.has_value());
      const RankedResult& result = *response->ranked;
      seconds[{span, k}] = result.stats.runtime_seconds;
      JsonValue::Object json_row;
      json_row["k"] = k;
      json_row["semesters"] = span;
      json_row["threads"] = args.threads;
      json_row["runtime_seconds"] = result.stats.runtime_seconds;
      json_row["nodes"] = result.stats.nodes_created;
      json_row["paths_returned"] =
          static_cast<int64_t>(result.paths.size());
      report.AddRow(std::move(json_row));
      row.push_back(StrFormat("%.3f (%zu paths)",
                              result.stats.runtime_seconds,
                              result.paths.size()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  report.WriteIfRequested(args);

  std::printf("\nCSV series (k, seconds) for plotting:\n");
  for (int span : spans) {
    std::printf("period_%d_semesters:", span);
    for (int k : k_values) {
      std::printf(" %d,%.3f", k, seconds[{span, k}]);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape check: all cells stay interactive (well under the\n"
      "paper's 25 s ceiling), growing mildly with k and period.\n");
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  coursenav::bench::BenchArgs args =
      coursenav::bench::BenchArgs::Parse(argc, argv);
  coursenav::Run(args);
  return 0;
}

// Cache warm-up benchmark: a fleet of identical interactive asks against
// the process-wide epoch-keyed request cache (src/cache/). A cold pass
// fills the cache with one run per distinct request (the paper's Brandeis
// catalog, deadline- and goal-driven mixes); a warm pass then replays the
// fleet and measures what reuse buys: per-request p50/p99, hit rate, the
// cold/warm fleet speedup, and the byte-equality verdict of warm answers
// against the cold originals at 1 and 4 threads. Writes BENCH_cache.json
// (override with --json-out=).

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "cache/request_cache.h"
#include "core/ranking.h"
#include "data/brandeis_cs.h"
#include "expr/parser.h"
#include "graph/learning_graph.h"
#include "plan/request.h"
#include "requirements/expr_goal.h"
#include "util/json.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace coursenav {
namespace {

struct FleetRequest {
  std::string name;
  ExplorationRequest request;
};

/// The distinct ask set: cheap deadline horizons, core-conjunction goal
/// requests, and ranked top-10 asks (the cache's best case — expensive
/// best-first searches whose answers are just k paths), all ending at the
/// evaluation window's Fall 2015.
std::vector<FleetRequest> BuildFleet(const data::BrandeisDataset& dataset,
                                     bool full, int num_threads) {
  std::string core_spec;
  for (const std::string& code : dataset.core_codes) {
    if (!core_spec.empty()) core_spec += " and ";
    core_spec += code;
  }

  auto parsed = expr::ParseBoolExpr(core_spec);
  if (!parsed.ok()) std::abort();
  auto goal = ExprGoal::Create(*parsed, dataset.catalog);
  if (!goal.ok()) std::abort();

  auto ranking = std::make_shared<const TimeRanking>();

  std::vector<FleetRequest> fleet;
  auto add = [&](TaskType type, int span) {
    FleetRequest entry;
    entry.name = std::string(TaskTypeName(type)) + "-" +
                 std::to_string(span) + "sem";
    entry.request.start = {data::StartTermForSpan(span),
                           dataset.catalog.NewCourseSet()};
    entry.request.end_term = data::EvaluationEndTerm();
    entry.request.type = type;
    if (type != TaskType::kDeadlineDriven) {
      entry.request.goal = *goal;
      entry.request.goal_spec = core_spec;
    }
    if (type == TaskType::kRanked) {
      entry.request.ranking = ranking;
      entry.request.ranking_spec = "time";
      entry.request.top_k = 10;
    }
    entry.request.options.num_threads = num_threads;
    fleet.push_back(std::move(entry));
  };
  // Interactive-scale asks only: the widest deadline/goal spans
  // materialize graphs past the result tier's byte budget and belong to
  // the degradation ladder, not the cache.
  for (int span : {2, 3}) add(TaskType::kDeadlineDriven, span);
  for (int span : {3, 4}) add(TaskType::kGoalDriven, span);
  for (int span : {4, 5}) add(TaskType::kRanked, span);
  if (full) add(TaskType::kRanked, 6);
  return fleet;
}

bool SameGraph(const LearningGraph& a, const LearningGraph& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges() ||
      a.root() != b.root()) {
    return false;
  }
  for (NodeId id = 0; id < a.num_nodes(); ++id) {
    const LearningNode& na = a.node(id);
    const LearningNode& nb = b.node(id);
    if (na.term != nb.term || na.completed != nb.completed ||
        na.options != nb.options || na.parent_edge != nb.parent_edge ||
        na.out_edges != nb.out_edges || na.is_goal != nb.is_goal ||
        na.path_cost != nb.path_cost) {
      return false;
    }
  }
  for (EdgeId id = 0; id < a.num_edges(); ++id) {
    const LearningEdge& ea = a.edge(id);
    const LearningEdge& eb = b.edge(id);
    if (ea.from != eb.from || ea.to != eb.to ||
        ea.selection != eb.selection || ea.cost != eb.cost) {
      return false;
    }
  }
  return true;
}

bool SameResponse(const ExplorationResponse& a, const ExplorationResponse& b) {
  if (a.generation.has_value() != b.generation.has_value()) return false;
  if (a.generation.has_value() &&
      !SameGraph(a.generation->graph, b.generation->graph)) {
    return false;
  }
  if (a.ranked.has_value() != b.ranked.has_value()) return false;
  if (a.ranked.has_value() && a.ranked->paths != b.ranked->paths) return false;
  return true;
}

double PercentileMs(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

void Run(const bench::BenchArgs& args) {
  bench::BenchReport report("cache_warmup", args);
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();

  const int warm_iterations = args.full ? 16 : 8;
  std::vector<FleetRequest> fleet =
      BuildFleet(dataset, args.full, /*num_threads=*/1);

  std::printf(
      "Cache warm-up: %zu distinct Brandeis requests, cold fill then a\n"
      "%d-iteration warm fleet replay through a fresh RequestCache.\n\n",
      fleet.size(), warm_iterations);

  cache::RequestCache request_cache;

  // Cold pass: one run per distinct request, all misses.
  std::vector<ExplorationResponse> cold_responses;
  std::vector<double> cold_ms;
  double cold_total_ms = 0.0;
  for (const FleetRequest& entry : fleet) {
    cache::CacheOutcome outcome = cache::CacheOutcome::kDisabled;
    Stopwatch timer;
    auto response = request_cache.Execute(dataset.catalog, dataset.schedule,
                                          entry.request, &outcome);
    const double ms = timer.ElapsedSeconds() * 1e3;
    if (!response.ok() || outcome != cache::CacheOutcome::kMiss) {
      std::fprintf(stderr, "cold %s: unexpected %s / %s\n",
                   entry.name.c_str(),
                   std::string(cache::CacheOutcomeName(outcome)).c_str(),
                   response.ok() ? "ok" : response.status().ToString().c_str());
      std::abort();
    }
    cold_responses.push_back(std::move(*response));
    cold_ms.push_back(ms);
    cold_total_ms += ms;
  }

  // Warm pass: the whole fleet again, warm_iterations times over.
  std::vector<std::vector<double>> warm_ms(fleet.size());
  double warm_total_ms = 0.0;
  int64_t warm_hits = 0;
  int64_t warm_requests = 0;
  bool identical_1_thread = true;
  for (int iteration = 0; iteration < warm_iterations; ++iteration) {
    for (size_t i = 0; i < fleet.size(); ++i) {
      cache::CacheOutcome outcome = cache::CacheOutcome::kDisabled;
      Stopwatch timer;
      auto response = request_cache.Execute(dataset.catalog, dataset.schedule,
                                            fleet[i].request, &outcome);
      const double ms = timer.ElapsedSeconds() * 1e3;
      warm_ms[i].push_back(ms);
      warm_total_ms += ms;
      ++warm_requests;
      if (response.ok() && outcome == cache::CacheOutcome::kHit) ++warm_hits;
      if (!response.ok() || !SameResponse(cold_responses[i], *response)) {
        identical_1_thread = false;
      }
    }
  }

  // Byte-equality at 4 threads: the result key is thread-free, so a
  // 4-thread ask must be served from the same canonical entry.
  bool identical_4_threads = true;
  std::vector<FleetRequest> threaded =
      BuildFleet(dataset, args.full, /*num_threads=*/4);
  for (size_t i = 0; i < threaded.size(); ++i) {
    cache::CacheOutcome outcome = cache::CacheOutcome::kDisabled;
    auto response = request_cache.Execute(dataset.catalog, dataset.schedule,
                                          threaded[i].request, &outcome);
    if (!response.ok() || outcome != cache::CacheOutcome::kHit ||
        !SameResponse(cold_responses[i], *response)) {
      identical_4_threads = false;
    }
  }

  bench::TextTable table({"request", "cold ms", "warm p50 ms", "warm p99 ms",
                          "speedup"});
  for (size_t i = 0; i < fleet.size(); ++i) {
    std::sort(warm_ms[i].begin(), warm_ms[i].end());
    const double p50 = PercentileMs(warm_ms[i], 0.50);
    const double p99 = PercentileMs(warm_ms[i], 0.99);
    const double speedup = p50 > 0.0 ? cold_ms[i] / p50 : 0.0;
    table.AddRow({fleet[i].name, StrFormat("%.3f", cold_ms[i]),
                  StrFormat("%.3f", p50), StrFormat("%.3f", p99),
                  StrFormat("%.1fx", speedup)});

    JsonValue::Object row;
    row["request"] = fleet[i].name;
    row["cold_ms"] = cold_ms[i];
    row["warm_p50_ms"] = p50;
    row["warm_p99_ms"] = p99;
    row["speedup"] = speedup;
    report.AddRow(std::move(row));
  }
  table.Print();

  const double cold_per_request =
      cold_total_ms / static_cast<double>(fleet.size());
  const double warm_per_request =
      warm_total_ms / static_cast<double>(warm_requests);
  const double fleet_speedup =
      warm_per_request > 0.0 ? cold_per_request / warm_per_request : 0.0;
  const double hit_rate =
      static_cast<double>(warm_hits) / static_cast<double>(warm_requests);

  cache::CacheStats stats = request_cache.Stats();
  std::printf(
      "\nfleet: cold %.3f ms/request, warm %.3f ms/request -> %.1fx\n"
      "warm hit rate: %.1f%% (%lld/%lld)\n"
      "byte-identical to cold: %s at 1 thread, %s at 4 threads\n"
      "tiers: %zu plans, %zu results (%zu bytes), %lld evictions\n",
      cold_per_request, warm_per_request, fleet_speedup, hit_rate * 100.0,
      static_cast<long long>(warm_hits),
      static_cast<long long>(warm_requests),
      identical_1_thread ? "yes" : "NO", identical_4_threads ? "yes" : "NO",
      stats.plan_entries, stats.result_entries, stats.result_bytes,
      static_cast<long long>(stats.evictions));

  JsonValue::Object summary;
  summary["request"] = "fleet";
  summary["cold_ms_per_request"] = cold_per_request;
  summary["warm_ms_per_request"] = warm_per_request;
  summary["speedup"] = fleet_speedup;
  summary["warm_hits"] = warm_hits;
  summary["warm_requests"] = warm_requests;
  summary["hit_rate"] = hit_rate;
  summary["byte_identical_1_thread"] = identical_1_thread;
  summary["byte_identical_4_threads"] = identical_4_threads;
  summary["result_hits"] = stats.result_hits;
  summary["result_misses"] = stats.result_misses;
  summary["plan_hits"] = stats.plan_hits;
  summary["result_bytes"] = static_cast<int64_t>(stats.result_bytes);
  report.AddRow(std::move(summary));

  const std::string out =
      args.json_out.empty() ? "BENCH_cache.json" : args.json_out;
  report.WriteTo(out);
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  coursenav::Run(coursenav::bench::BenchArgs::Parse(argc, argv));
  return 0;
}

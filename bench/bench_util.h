#ifndef COURSENAV_BENCH_BENCH_UTIL_H_
#define COURSENAV_BENCH_BENCH_UTIL_H_

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/string_util.h"

namespace coursenav::bench {

/// Tiny flag reader shared by the reproduction harnesses.
/// Supported forms: `--full` (raise budgets to reach the paper's largest
/// configurations), `--profile` (per-stage span profile after the tables),
/// `--threads=<n>` (worker threads for the generators; 0 = serial),
/// `--json-out=<file>` (machine-readable BenchReport for cross-PR perf
/// tracking), and `--spans=4,5` style overrides, parsed by callers.
struct BenchArgs {
  bool full = false;
  bool profile = false;
  int threads = 0;
  std::string json_out;
  std::vector<std::string> raw;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--full") {
        args.full = true;
      } else if (arg == "--profile") {
        args.profile = true;
      } else if (arg.rfind("--threads=", 0) == 0) {
        args.threads = std::atoi(arg.c_str() + 10);
      } else if (arg.rfind("--json-out=", 0) == 0) {
        args.json_out = arg.substr(11);
      } else {
        args.raw.push_back(arg);
      }
    }
    return args;
  }
};

/// The process's peak resident set size in bytes (Linux ru_maxrss is in
/// kilobytes). 0 if the kernel refuses rusage.
inline uint64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

/// Machine-readable sibling of the printed tables: rows of key->value
/// objects plus run-level context (threads, peak RSS), dumped as one JSON
/// document so the perf trajectory is trackable across PRs
/// (`BENCH_table2.json`, `BENCH_figure4.json`, ...).
class BenchReport {
 public:
  BenchReport(std::string bench_name, const BenchArgs& args)
      : name_(std::move(bench_name)), full_(args.full),
        threads_(args.threads) {}

  void AddRow(JsonValue::Object row) { rows_.push_back(std::move(row)); }

  /// Writes the report to `path` (pretty-printed JSON). Peak RSS is
  /// sampled here, at the end of the run.
  bool WriteTo(const std::string& path) const {
    JsonValue::Object doc;
    doc["bench"] = name_;
    doc["full"] = full_;
    doc["threads"] = threads_;
    doc["peak_rss_bytes"] = static_cast<int64_t>(PeakRssBytes());
    JsonValue::Array rows;
    rows.reserve(rows_.size());
    for (const JsonValue::Object& row : rows_) rows.emplace_back(row);
    doc["rows"] = std::move(rows);
    std::string text = JsonValue(std::move(doc)).Dump(2);
    text += "\n";
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fwrite(text.data(), 1, text.size(), file);
    std::fclose(file);
    std::printf("\nwrote %s\n", path.c_str());
    return true;
  }

  /// Writes to `args.json_out` when the flag was given.
  bool WriteIfRequested(const BenchArgs& args) const {
    if (args.json_out.empty()) return true;
    return WriteTo(args.json_out);
  }

 private:
  std::string name_;
  bool full_;
  int threads_;
  std::vector<JsonValue::Object> rows_;
};

/// Fixed-width text table, printed in the paper's row/column layout.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::string line = "|";
      for (size_t c = 0; c < widths.size(); ++c) {
        std::string cell = c < cells.size() ? cells[c] : "";
        line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
      }
      std::printf("%s\n", line.c_str());
    };
    std::string rule = "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c] + 2, '-') + "+";
    }
    std::printf("%s\n", rule.c_str());
    print_row(headers_);
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(row);
    std::printf("%s\n", rule.c_str());
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats big counts with thousands separators, as the paper prints them.
inline std::string WithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter != 0 && counter % 3 == 0) out.insert(out.begin(), ',');
    out.insert(out.begin(), *it);
    ++counter;
  }
  return out;
}

inline std::string Seconds(double s) { return StrFormat("%.3f", s); }

/// Per-stage profiling for a harness run (`--profile`): owns a span
/// tracer, installs it on the constructing thread for the profiler's
/// lifetime, and prints the per-stage aggregate (calls, total and max
/// duration per span name) collected across every run in between.
class StageProfiler {
 public:
  StageProfiler() : install_(&tracer_) {}

  obs::Tracer* tracer() { return &tracer_; }

  void Print() const {
    std::vector<obs::SpanAggregate> aggregates =
        obs::AggregateSpans(tracer_.Spans());
    std::printf("\nper-stage profile:\n");
    if (aggregates.empty()) {
      // Possible when the binary was built with -DCOURSENAV_TRACING=OFF.
      std::printf("(no spans recorded — was tracing compiled out?)\n");
      return;
    }
    TextTable table({"stage", "spans", "total ms", "max ms"});
    for (const obs::SpanAggregate& aggregate : aggregates) {
      table.AddRow({aggregate.name, WithCommas(
                        static_cast<uint64_t>(aggregate.count)),
                    StrFormat("%.3f",
                              static_cast<double>(aggregate.total_us) / 1e3),
                    StrFormat("%.3f",
                              static_cast<double>(aggregate.max_us) / 1e3)});
    }
    table.Print();
    if (tracer_.dropped() > 0) {
      std::printf("(trace buffer full: %zu spans dropped)\n",
                  tracer_.dropped());
    }
  }

 private:
  obs::Tracer tracer_;
  obs::ScopedTracer install_;
};

}  // namespace coursenav::bench

#endif  // COURSENAV_BENCH_BENCH_UTIL_H_

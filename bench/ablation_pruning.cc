// Ablation bench: isolates the contribution of each goal-driven design
// choice called out in DESIGN.md — the two pruning strategies (alone and
// combined), Equation 1's minimum-selection enforcement, and the
// availability-verdict cache. The paper only reports none-vs-both
// (Table 1); this bench fills in the matrix.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/goal_generator.h"
#include "data/brandeis_cs.h"

namespace coursenav {
namespace {

struct Variant {
  const char* name;
  GoalDrivenConfig config;
};

void Run(const bench::BenchArgs& args) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();
  const int span = args.full ? 5 : 4;
  EnrollmentStatus start{data::StartTermForSpan(span),
                         dataset.catalog.NewCourseSet()};

  std::printf("Ablation: goal-driven pruning variants "
              "(%d-semester period, CS major, m = 3)\n\n",
              span);

  std::vector<Variant> variants;
  {
    Variant v{"none", {}};
    v.config.enable_time_pruning = false;
    v.config.enable_availability_pruning = false;
    v.config.enforce_min_selection = false;
    variants.push_back(v);
  }
  {
    Variant v{"time only", {}};
    v.config.enable_availability_pruning = false;
    variants.push_back(v);
  }
  {
    Variant v{"availability only", {}};
    v.config.enable_time_pruning = false;
    v.config.enforce_min_selection = false;
    variants.push_back(v);
  }
  {
    Variant v{"time, no min-selection", {}};
    v.config.enable_availability_pruning = false;
    v.config.enforce_min_selection = false;
    variants.push_back(v);
  }
  variants.push_back({"both (paper default)", {}});
  {
    Variant v{"both, no availability cache", {}};
    v.config.cache_availability_checks = false;
    variants.push_back(v);
  }

  bench::TextTable table({"variant", "paths", "nodes", "pruned (time)",
                          "pruned (avail)", "seconds"});
  for (const Variant& variant : variants) {
    ExplorationOptions options;
    options.limits.max_nodes = 10'000'000;
    options.limits.max_memory_bytes = 2ull << 30;
    auto result = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                          start, end, *dataset.cs_major,
                                          options, variant.config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", variant.name,
                   result.status().ToString().c_str());
      continue;
    }
    std::string paths = bench::WithCommas(
        static_cast<uint64_t>(result->stats.terminal_paths));
    if (!result->termination.ok()) paths = "> " + paths + " (budget)";
    table.AddRow({variant.name, paths,
                  bench::WithCommas(
                      static_cast<uint64_t>(result->stats.nodes_created)),
                  bench::WithCommas(
                      static_cast<uint64_t>(result->stats.pruned_time)),
                  bench::WithCommas(static_cast<uint64_t>(
                      result->stats.pruned_availability)),
                  bench::Seconds(result->stats.runtime_seconds)});
  }
  table.Print();
  std::printf(
      "\nReading: each strategy alone already removes most doomed subtrees;\n"
      "combined they reproduce Table 1's >99%% path reduction. The cache\n"
      "and min-selection rows isolate pure-speed optimizations (identical\n"
      "path counts by construction).\n");
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  coursenav::bench::BenchArgs args =
      coursenav::bench::BenchArgs::Parse(argc, argv);
  coursenav::Run(args);
  return 0;
}

// Ablation bench: the ranked generator's A* cost-to-go heuristic vs plain
// uniform-cost (best-first) search — the paper's §4.3.2 runs plain
// best-first; the heuristic is our extension. With uniform edge costs,
// plain best-first degenerates into breadth-first over every node cheaper
// than the k-th goal; the admissible ceil(left/m) bound focuses the search
// onto full-progress prefixes without changing the returned cost sequence
// (consistency ⇒ Lemma 2 still holds; the equality is asserted by
// tests/ranking_test.cc).
//
// Plain best-first is emulated here with a zero-heuristic wrapper ranking.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/ranked_generator.h"
#include "data/brandeis_cs.h"

namespace coursenav {
namespace {

/// TimeRanking with the heuristic disabled (reverts to uniform-cost
/// search, the paper's formulation).
class PlainTimeRanking final : public RankingFunction {
 public:
  double EdgeCost(const DynamicBitset& selection, Term term) const override {
    return base_.EdgeCost(selection, term);
  }
  std::string name() const override { return "time (no heuristic)"; }

 private:
  TimeRanking base_;
};

void Run(const bench::BenchArgs& args) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();
  const int k = 100;

  std::printf("Ablation: A* cost-to-go heuristic vs plain best-first\n"
              "(top-%d shortest paths to the CS major, m = 3)\n\n",
              k);

  bench::TextTable table({"semesters", "variant", "nodes expanded",
                          "nodes created", "seconds", "paths"});
  for (int span : {4, 5, 6}) {
    EnrollmentStatus start{data::StartTermForSpan(span),
                           dataset.catalog.NewCourseSet()};
    ExplorationOptions options;
    // Plain best-first explodes on long spans; budget it rather than hang.
    options.limits.max_nodes = args.full ? 50'000'000 : 8'000'000;
    options.limits.max_memory_bytes = 2ull << 30;

    TimeRanking astar;
    PlainTimeRanking plain;
    for (const auto& [name, ranking] :
         {std::pair<const char*, const RankingFunction*>{"A*", &astar},
          {"plain best-first", &plain}}) {
      auto result = GenerateRankedPaths(dataset.catalog, dataset.schedule,
                                        start, end, *dataset.cs_major,
                                        *ranking, k, options);
      if (!result.ok()) continue;
      std::string paths = std::to_string(result->paths.size());
      if (!result->termination.ok()) paths += " (budget)";
      table.AddRow({std::to_string(span), name,
                    bench::WithCommas(static_cast<uint64_t>(
                        result->stats.nodes_expanded)),
                    bench::WithCommas(static_cast<uint64_t>(
                        result->stats.nodes_created)),
                    bench::Seconds(result->stats.runtime_seconds), paths});
    }
  }
  table.Print();
  std::printf(
      "\nReading: identical path costs (asserted in the test suite), but\n"
      "the heuristic cuts explored nodes by orders of magnitude on long\n"
      "periods, which is what keeps Figure 4 interactive.\n");
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  coursenav::bench::BenchArgs args =
      coursenav::bench::BenchArgs::Parse(argc, argv);
  coursenav::Run(args);
  return 0;
}

// Ablation bench: tree materialization (the paper's approach) vs.
// DAG-memoized counting (our extension) for the same path populations.
// Quantifies why the paper's Table 2 ran out of memory: the expansion tree
// revisits each distinct enrollment status exponentially often, while the
// status DAG stays comparatively small.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/counting.h"
#include "core/deadline_generator.h"
#include "data/brandeis_cs.h"

namespace coursenav {
namespace {

void Run(const bench::BenchArgs& args) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();

  std::printf("Ablation: tree materialization vs. DAG-memoized counting\n"
              "(deadline-driven, fresh student, m = 3)\n\n");

  bench::TextTable table({"semesters", "paths", "tree nodes", "tree sec",
                          "DAG statuses", "DAG sec", "tree/DAG size"});

  for (int span : {3, 4, 5}) {
    if (span == 5 && !args.full) {
      // The 5-semester tree exceeds the default memory budget; shown with
      // --full only.
      continue;
    }
    EnrollmentStatus start{data::StartTermForSpan(span),
                           dataset.catalog.NewCourseSet()};
    ExplorationOptions options;
    options.limits.max_nodes = args.full ? 40'000'000 : 4'000'000;

    auto tree = GenerateDeadlineDrivenPaths(dataset.catalog, dataset.schedule,
                                            start, end, options);
    ExplorationOptions count_options;
    count_options.limits.max_seconds = 120.0;
    auto dag = CountDeadlineDrivenPaths(dataset.catalog, dataset.schedule,
                                        start, end, count_options);
    if (!tree.ok() || !dag.ok()) continue;

    std::string ratio = "-";
    if (tree->termination.ok() && dag->distinct_statuses > 0) {
      ratio = StrFormat("%.1fx", static_cast<double>(
                                     tree->stats.nodes_created) /
                                     static_cast<double>(
                                         dag->distinct_statuses));
    }
    std::string paths =
        tree->termination.ok()
            ? bench::WithCommas(
                  static_cast<uint64_t>(tree->stats.terminal_paths))
            : bench::WithCommas(dag->total_paths) + " (DAG)";
    table.AddRow({std::to_string(span), paths,
                  bench::WithCommas(
                      static_cast<uint64_t>(tree->stats.nodes_created)),
                  tree->termination.ok()
                      ? bench::Seconds(tree->stats.runtime_seconds)
                      : "budget",
                  bench::WithCommas(
                      static_cast<uint64_t>(dag->distinct_statuses)),
                  bench::Seconds(dag->runtime_seconds), ratio});
  }
  table.Print();
  std::printf(
      "\nReading: the DAG stays one to two orders of magnitude smaller than\n"
      "the tree and keeps shrinking relatively as the period grows — the\n"
      "compression that makes the paper's impossible-to-materialize cells\n"
      "countable.\n");
}

}  // namespace
}  // namespace coursenav

int main(int argc, char** argv) {
  coursenav::bench::BenchArgs args =
      coursenav::bench::BenchArgs::Parse(argc, argv);
  coursenav::Run(args);
  return 0;
}

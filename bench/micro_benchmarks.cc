// Google-benchmark microbenches for the hot-path primitives: course-set
// algebra, prerequisite evaluation, option-set computation, selection
// enumeration, and requirement credit allocation (counting fast path vs.
// the two max-flow solvers).

#include <benchmark/benchmark.h>

#include "core/combinations.h"
#include "core/enrollment.h"
#include "data/brandeis_cs.h"
#include "requirements/degree_requirement.h"
#include "util/random.h"

namespace coursenav {
namespace {

const data::BrandeisDataset& Dataset() {
  static const data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  return dataset;
}

DynamicBitset RandomSet(const Catalog& catalog, Random& rng, double density) {
  DynamicBitset out = catalog.NewCourseSet();
  for (int i = 0; i < catalog.size(); ++i) {
    if (rng.Bernoulli(density)) out.set(i);
  }
  return out;
}

void BM_BitsetUnion(benchmark::State& state) {
  Random rng(1);
  const Catalog& catalog = Dataset().catalog;
  DynamicBitset a = RandomSet(catalog, rng, 0.3);
  DynamicBitset b = RandomSet(catalog, rng, 0.3);
  for (auto _ : state) {
    DynamicBitset c = a;
    c |= b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BitsetUnion);

void BM_BitsetSubsetTest(benchmark::State& state) {
  Random rng(2);
  const Catalog& catalog = Dataset().catalog;
  DynamicBitset a = RandomSet(catalog, rng, 0.2);
  DynamicBitset b = RandomSet(catalog, rng, 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IsSubsetOf(b));
  }
}
BENCHMARK(BM_BitsetSubsetTest);

void BM_BitsetHash(benchmark::State& state) {
  Random rng(3);
  DynamicBitset a = RandomSet(Dataset().catalog, rng, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Hash());
  }
}
BENCHMARK(BM_BitsetHash);

void BM_CompiledPrereqEval(benchmark::State& state) {
  Random rng(4);
  const data::BrandeisDataset& dataset = Dataset();
  DynamicBitset completed = RandomSet(dataset.catalog, rng, 0.3);
  // A course with a two-term conjunctive prerequisite.
  CourseId course = *dataset.catalog.FindByCode("COSI30A");
  const expr::CompiledExpr& prereq = dataset.catalog.compiled_prereq(course);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prereq.Eval(completed));
  }
}
BENCHMARK(BM_CompiledPrereqEval);

void BM_ComputeOptions(benchmark::State& state) {
  Random rng(5);
  const data::BrandeisDataset& dataset = Dataset();
  ExplorationOptions options;
  DynamicBitset completed = RandomSet(dataset.catalog, rng, 0.25);
  Term term(Season::kFall, 2013);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeOptions(dataset.catalog, dataset.schedule,
                                            completed, term, options));
  }
}
BENCHMARK(BM_ComputeOptions);

void BM_SelectionEnumeration(benchmark::State& state) {
  const int option_count = static_cast<int>(state.range(0));
  std::vector<int> ids;
  for (int i = 0; i < option_count; ++i) ids.push_back(i);
  DynamicBitset options = DynamicBitset::FromIndices(38, ids);
  for (auto _ : state) {
    int subsets = 0;
    ForEachSelection(options, 1, 3, [&](const DynamicBitset&) {
      ++subsets;
      return true;
    });
    benchmark::DoNotOptimize(subsets);
  }
}
BENCHMARK(BM_SelectionEnumeration)->Arg(4)->Arg(8)->Arg(12);

void BM_CreditedSlotsDisjointFastPath(benchmark::State& state) {
  Random rng(6);
  const data::BrandeisDataset& dataset = Dataset();
  DynamicBitset completed = RandomSet(dataset.catalog, rng, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dataset.cs_major->CreditedSlots(completed));
  }
}
BENCHMARK(BM_CreditedSlotsDisjointFastPath);

std::shared_ptr<const DegreeRequirement> OverlappingRequirement(
    FlowAlgorithm algorithm) {
  const data::BrandeisDataset& dataset = Dataset();
  // Overlapping groups force the max-flow allocation path: systems-flavored
  // electives count toward either bucket but credit only one.
  std::vector<std::string> systems = {"COSI21B", "COSI35A", "COSI108A",
                                      "COSI117A", "COSI118A", "COSI123A"};
  std::vector<std::string> breadth = {"COSI108A", "COSI117A", "COSI118A",
                                      "COSI123A", "COSI101A", "COSI107A",
                                      "COSI122A"};
  auto req = DegreeRequirement::Builder(&dataset.catalog)
                 .AddGroup("systems", systems, 3)
                 .AddGroup("breadth", breadth, 4)
                 .Build(algorithm);
  return *req;
}

void BM_CreditedSlotsFordFulkerson(benchmark::State& state) {
  Random rng(7);
  auto req = OverlappingRequirement(FlowAlgorithm::kFordFulkerson);
  DynamicBitset completed = RandomSet(Dataset().catalog, rng, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(req->CreditedSlots(completed));
  }
}
BENCHMARK(BM_CreditedSlotsFordFulkerson);

void BM_CreditedSlotsDinic(benchmark::State& state) {
  Random rng(7);
  auto req = OverlappingRequirement(FlowAlgorithm::kDinic);
  DynamicBitset completed = RandomSet(Dataset().catalog, rng, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(req->CreditedSlots(completed));
  }
}
BENCHMARK(BM_CreditedSlotsDinic);

}  // namespace
}  // namespace coursenav

BENCHMARK_MAIN();

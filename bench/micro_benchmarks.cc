// Google-benchmark microbenches for the hot-path primitives: course-set
// algebra, prerequisite evaluation, option-set computation, selection
// enumeration, and requirement credit allocation (counting fast path vs.
// the two max-flow solvers).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/combinations.h"
#include "core/enrollment.h"
#include "data/brandeis_cs.h"
#include "requirements/degree_requirement.h"
#include "util/random.h"
#include "util/simd/simd.h"

namespace coursenav {
namespace {

const data::BrandeisDataset& Dataset() {
  static const data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  return dataset;
}

DynamicBitset RandomSet(const Catalog& catalog, Random& rng, double density) {
  DynamicBitset out = catalog.NewCourseSet();
  for (int i = 0; i < catalog.size(); ++i) {
    if (rng.Bernoulli(density)) out.set(i);
  }
  return out;
}

void BM_BitsetUnion(benchmark::State& state) {
  Random rng(1);
  const Catalog& catalog = Dataset().catalog;
  DynamicBitset a = RandomSet(catalog, rng, 0.3);
  DynamicBitset b = RandomSet(catalog, rng, 0.3);
  for (auto _ : state) {
    DynamicBitset c = a;
    c |= b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BitsetUnion);

void BM_BitsetSubsetTest(benchmark::State& state) {
  Random rng(2);
  const Catalog& catalog = Dataset().catalog;
  DynamicBitset a = RandomSet(catalog, rng, 0.2);
  DynamicBitset b = RandomSet(catalog, rng, 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IsSubsetOf(b));
  }
}
BENCHMARK(BM_BitsetSubsetTest);

void BM_BitsetHash(benchmark::State& state) {
  Random rng(3);
  DynamicBitset a = RandomSet(Dataset().catalog, rng, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Hash());
  }
}
BENCHMARK(BM_BitsetHash);

void BM_CompiledPrereqEval(benchmark::State& state) {
  Random rng(4);
  const data::BrandeisDataset& dataset = Dataset();
  DynamicBitset completed = RandomSet(dataset.catalog, rng, 0.3);
  // A course with a two-term conjunctive prerequisite.
  CourseId course = *dataset.catalog.FindByCode("COSI30A");
  const expr::CompiledExpr& prereq = dataset.catalog.compiled_prereq(course);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prereq.Eval(completed));
  }
}
BENCHMARK(BM_CompiledPrereqEval);

void BM_ComputeOptions(benchmark::State& state) {
  Random rng(5);
  const data::BrandeisDataset& dataset = Dataset();
  ExplorationOptions options;
  DynamicBitset completed = RandomSet(dataset.catalog, rng, 0.25);
  Term term(Season::kFall, 2013);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeOptions(dataset.catalog, dataset.schedule,
                                            completed, term, options));
  }
}
BENCHMARK(BM_ComputeOptions);

void BM_SelectionEnumeration(benchmark::State& state) {
  const int option_count = static_cast<int>(state.range(0));
  std::vector<int> ids;
  for (int i = 0; i < option_count; ++i) ids.push_back(i);
  DynamicBitset options = DynamicBitset::FromIndices(38, ids);
  for (auto _ : state) {
    int subsets = 0;
    ForEachSelection(options, 1, 3, [&](const DynamicBitset&) {
      ++subsets;
      return true;
    });
    benchmark::DoNotOptimize(subsets);
  }
}
BENCHMARK(BM_SelectionEnumeration)->Arg(4)->Arg(8)->Arg(12);

void BM_CreditedSlotsDisjointFastPath(benchmark::State& state) {
  Random rng(6);
  const data::BrandeisDataset& dataset = Dataset();
  DynamicBitset completed = RandomSet(dataset.catalog, rng, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dataset.cs_major->CreditedSlots(completed));
  }
}
BENCHMARK(BM_CreditedSlotsDisjointFastPath);

std::shared_ptr<const DegreeRequirement> OverlappingRequirement(
    FlowAlgorithm algorithm) {
  const data::BrandeisDataset& dataset = Dataset();
  // Overlapping groups force the max-flow allocation path: systems-flavored
  // electives count toward either bucket but credit only one.
  std::vector<std::string> systems = {"COSI21B", "COSI35A", "COSI108A",
                                      "COSI117A", "COSI118A", "COSI123A"};
  std::vector<std::string> breadth = {"COSI108A", "COSI117A", "COSI118A",
                                      "COSI123A", "COSI101A", "COSI107A",
                                      "COSI122A"};
  auto req = DegreeRequirement::Builder(&dataset.catalog)
                 .AddGroup("systems", systems, 3)
                 .AddGroup("breadth", breadth, 4)
                 .Build(algorithm);
  return *req;
}

void BM_CreditedSlotsFordFulkerson(benchmark::State& state) {
  Random rng(7);
  auto req = OverlappingRequirement(FlowAlgorithm::kFordFulkerson);
  DynamicBitset completed = RandomSet(Dataset().catalog, rng, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(req->CreditedSlots(completed));
  }
}
BENCHMARK(BM_CreditedSlotsFordFulkerson);

void BM_CreditedSlotsDinic(benchmark::State& state) {
  Random rng(7);
  auto req = OverlappingRequirement(FlowAlgorithm::kDinic);
  DynamicBitset completed = RandomSet(Dataset().catalog, rng, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(req->CreditedSlots(completed));
  }
}
BENCHMARK(BM_CreditedSlotsDinic);

// --- Fused set-algebra kernels: portable scalar table vs the runtime-
// dispatched table, at universe sizes of 1, 2, 16, and 160 words (64,
// 128, 1024, and 10240 courses — the 38-course Brandeis world packs into
// 1 word; 160 words is the 10k synthetic-catalog scale). ---

std::vector<uint64_t> RandomWords(Random& rng, size_t n, double density) {
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) {
    w = 0;
    for (int b = 0; b < 64; ++b) {
      if (rng.Bernoulli(density)) w |= uint64_t{1} << b;
    }
  }
  return words;
}

const simd::Kernels& KernelsFor(const benchmark::State& state) {
  return state.range(1) != 0 ? simd::Active() : simd::Scalar();
}

void SetKernelLabel(benchmark::State& state) {
  state.SetLabel(state.range(1) != 0 ? simd::Active().name : "scalar");
}

void BM_KernelAndNotPopcount(benchmark::State& state) {
  Random rng(11);
  const size_t n = static_cast<size_t>(state.range(0));
  const simd::Kernels& k = KernelsFor(state);
  SetKernelLabel(state);
  std::vector<uint64_t> a = RandomWords(rng, n, 0.3);
  std::vector<uint64_t> b = RandomWords(rng, n, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.and_not_popcount(a.data(), b.data(), n));
  }
}
BENCHMARK(BM_KernelAndNotPopcount)
    ->ArgsProduct({{1, 2, 16, 160}, {0, 1}});

void BM_KernelSubsetOf(benchmark::State& state) {
  Random rng(12);
  const size_t n = static_cast<size_t>(state.range(0));
  const simd::Kernels& k = KernelsFor(state);
  SetKernelLabel(state);
  std::vector<uint64_t> b = RandomWords(rng, n, 0.6);
  std::vector<uint64_t> a = RandomWords(rng, n, 0.5);
  for (size_t i = 0; i < n; ++i) a[i] &= b[i];  // subset holds: full scan
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.subset_of(a.data(), b.data(), n));
  }
}
BENCHMARK(BM_KernelSubsetOf)->ArgsProduct({{1, 2, 16, 160}, {0, 1}});

void BM_KernelUnionInplace(benchmark::State& state) {
  Random rng(13);
  const size_t n = static_cast<size_t>(state.range(0));
  const simd::Kernels& k = KernelsFor(state);
  SetKernelLabel(state);
  std::vector<uint64_t> a = RandomWords(rng, n, 0.3);
  std::vector<uint64_t> b = RandomWords(rng, n, 0.3);
  for (auto _ : state) {
    k.union_inplace(a.data(), b.data(), n);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_KernelUnionInplace)->ArgsProduct({{1, 2, 16, 160}, {0, 1}});

void BM_KernelCountUnsatisfiedLiterals(benchmark::State& state) {
  Random rng(14);
  const size_t n = static_cast<size_t>(state.range(0));
  const simd::Kernels& k = KernelsFor(state);
  SetKernelLabel(state);
  constexpr size_t kClauses = 12;
  std::vector<uint64_t> pos;
  for (size_t c = 0; c < kClauses; ++c) {
    std::vector<uint64_t> row = RandomWords(rng, n, 0.05);
    pos.insert(pos.end(), row.begin(), row.end());
  }
  std::vector<uint64_t> completed = RandomWords(rng, n, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.count_unsatisfied_literals(
        pos.data(), nullptr, n, kClauses, completed.data()));
  }
}
BENCHMARK(BM_KernelCountUnsatisfiedLiterals)
    ->ArgsProduct({{1, 2, 16, 160}, {0, 1}});

}  // namespace
}  // namespace coursenav

BENCHMARK_MAIN();

#include "catalog/term.h"

#include <gtest/gtest.h>

namespace coursenav {
namespace {

TEST(TermTest, ConstructionAndAccessors) {
  Term fall(Season::kFall, 2011);
  EXPECT_EQ(fall.season(), Season::kFall);
  EXPECT_EQ(fall.year(), 2011);
  Term spring(Season::kSpring, 2012);
  EXPECT_EQ(spring.season(), Season::kSpring);
  EXPECT_EQ(spring.year(), 2012);
}

TEST(TermTest, SuccessorAlternatesSeasons) {
  Term fall11(Season::kFall, 2011);
  Term spring12 = fall11.Next();
  EXPECT_EQ(spring12, Term(Season::kSpring, 2012));
  EXPECT_EQ(spring12.Next(), Term(Season::kFall, 2012));
  EXPECT_EQ(spring12.Prev(), fall11);
}

TEST(TermTest, ArithmeticAndDifference) {
  Term fall12(Season::kFall, 2012);
  Term fall15(Season::kFall, 2015);
  EXPECT_EQ(fall15 - fall12, 6);
  EXPECT_EQ(fall12 + 6, fall15);
  EXPECT_EQ(fall15.Plus(-6), fall12);
}

TEST(TermTest, Ordering) {
  Term f11(Season::kFall, 2011);
  Term s12(Season::kSpring, 2012);
  Term f12(Season::kFall, 2012);
  EXPECT_LT(f11, s12);
  EXPECT_LT(s12, f12);
  EXPECT_GT(f12, f11);
  EXPECT_LE(f11, f11);
}

TEST(TermTest, FromIndexRoundTrip) {
  Term t(Season::kSpring, 2013);
  EXPECT_EQ(Term::FromIndex(t.index()), t);
}

TEST(TermTest, ToStringFormats) {
  EXPECT_EQ(Term(Season::kFall, 2011).ToString(), "Fall 2011");
  EXPECT_EQ(Term(Season::kSpring, 2012).ToString(), "Spring 2012");
  EXPECT_EQ(Term(Season::kFall, 2011).ToShortString(), "F11");
  EXPECT_EQ(Term(Season::kSpring, 2005).ToShortString(), "S05");
}

struct ParseCase {
  const char* input;
  Season season;
  int year;
};

class TermParseTest : public ::testing::TestWithParam<ParseCase> {};

TEST_P(TermParseTest, ParsesAcceptedFormats) {
  const ParseCase& c = GetParam();
  Result<Term> t = Term::Parse(c.input);
  ASSERT_TRUE(t.ok()) << c.input << ": " << t.status().ToString();
  EXPECT_EQ(t->season(), c.season) << c.input;
  EXPECT_EQ(t->year(), c.year) << c.input;
}

INSTANTIATE_TEST_SUITE_P(
    Formats, TermParseTest,
    ::testing::Values(
        ParseCase{"Fall 2011", Season::kFall, 2011},
        ParseCase{"fall 2011", Season::kFall, 2011},
        ParseCase{"FALL2011", Season::kFall, 2011},
        ParseCase{"Fall '11", Season::kFall, 2011},
        ParseCase{"Fall 11", Season::kFall, 2011},
        ParseCase{"F11", Season::kFall, 2011},
        ParseCase{"f2011", Season::kFall, 2011},
        ParseCase{"Spring 2012", Season::kSpring, 2012},
        ParseCase{"S12", Season::kSpring, 2012},
        ParseCase{"spring '12", Season::kSpring, 2012},
        ParseCase{"Autumn 2013", Season::kFall, 2013},
        ParseCase{"  Fall 2014  ", Season::kFall, 2014}));

TEST(TermParseTest, RejectsInvalid) {
  for (const char* bad :
       {"", "Winter 2011", "Fall", "2011", "Fall twenty", "Fall -3",
        "Fall 99999", "Summer 2012"}) {
    Result<Term> t = Term::Parse(bad);
    EXPECT_FALSE(t.ok()) << bad;
    EXPECT_TRUE(t.status().IsParseError()) << bad;
  }
}

TEST(TermParseTest, RoundTripThroughToString) {
  for (Term t : {Term(Season::kFall, 2011), Term(Season::kSpring, 2015)}) {
    EXPECT_EQ(*Term::Parse(t.ToString()), t);
    EXPECT_EQ(*Term::Parse(t.ToShortString()), t);
  }
}

TEST(SeasonTest, ToString) {
  EXPECT_EQ(SeasonToString(Season::kFall), "Fall");
  EXPECT_EQ(SeasonToString(Season::kSpring), "Spring");
}

}  // namespace
}  // namespace coursenav

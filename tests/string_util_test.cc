#include "util/string_util.h"

#include <gtest/gtest.h>

namespace coursenav {
namespace {

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  abc\t\n"), "abc");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" a b "), "a b");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto fields = Split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(SplitTest, SingleFieldWithoutDelimiter) {
  auto fields = Split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(SplitAndTrimTest, DropsEmptyFields) {
  auto fields = SplitAndTrim(" a ; ;b;", ';');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(CaseTest, ToLowerUpper) {
  EXPECT_EQ(ToLowerAscii("CoSi11A"), "cosi11a");
  EXPECT_EQ(ToUpperAscii("cosi11a"), "COSI11A");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Fall", "fall"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("Fall", "Fal"));
  EXPECT_FALSE(EqualsIgnoreCase("Fall", "fill"));
}

TEST(AffixTest, StartsAndEndsWith) {
  EXPECT_TRUE(StartsWith("COSI11A", "COSI"));
  EXPECT_FALSE(StartsWith("CO", "COSI"));
  EXPECT_TRUE(EndsWith("COSI11A", "11A"));
  EXPECT_FALSE(EndsWith("A", "11A"));
}

TEST(ParseIntTest, ParsesValidIntegers) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_EQ(*ParseInt("  13  "), 13);
}

TEST(ParseIntTest, RejectsInvalid) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12a").ok());
  EXPECT_FALSE(ParseInt("a12").ok());
  EXPECT_FALSE(ParseInt("1 2").ok());
  EXPECT_FALSE(ParseInt("999999999999999999999999").ok());
}

TEST(ParseDoubleTest, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-0.25"), -0.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
}

TEST(ParseDoubleTest, RejectsInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("3.5x").ok());
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

}  // namespace
}  // namespace coursenav

// Cache correctness under schedule-churn fault injection (ctest labels
// `cache` + `chaos`): 200 deterministic seeds, each asserting the two
// laws that make caching safe to leave on in production:
//
//  1. No stale answer, ever: any Execute that reports a cache hit is
//     byte-identical to the clean (no-injection) run of the same request.
//     This holds because a run during which any churn fault fired
//     observed a perturbed world AND rotated the epoch token (the token
//     folds the injector's fired-count), so its insert no-ops; only runs
//     that observed zero churn — i.e. recorded truth — are ever stored.
//  2. Post-churn recovery matches a cold rebuild byte-for-byte: once the
//     injection scope exits, the first request is cold (the activation id
//     left the token) and equals the clean reference exactly; the second
//     is a hit and equals it too.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "cache/request_cache.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "plan/request.h"
#include "expr/parser.h"
#include "requirements/expr_goal.h"
#include "tests/test_util.h"
#include "util/fault_injection.h"

namespace coursenav {
namespace {

using cache::CacheOutcome;
using cache::RequestCache;
using testing_util::Figure3Fixture;
using testing_util::GraphDifference;
using testing_util::StatsDifference;

ExplorationRequest Figure3Request(const Figure3Fixture& fixture) {
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  request.type = TaskType::kGoalDriven;
  request.goal_spec = "11A and 29A and 21A";
  auto parsed = expr::ParseBoolExpr(request.goal_spec);
  if (!parsed.ok()) std::abort();
  auto goal = ExprGoal::Create(*parsed, fixture.catalog);
  if (!goal.ok()) std::abort();
  request.goal = *goal;
  request.options.num_threads = 1;
  return request;
}

FaultConfig ChurnConfig(uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.site_probability[std::string(kFaultSiteScheduleChurn)] = 0.3;
  return config;
}

/// "" when `response` is byte-identical to `reference` (graph, stats —
/// everything but wall time); otherwise the first difference.
std::string ResponseDifference(const ExplorationResponse& reference,
                               const ExplorationResponse& response) {
  if (!response.generation.has_value()) return "no generation result";
  std::string diff = GraphDifference(reference.generation->graph,
                                     response.generation->graph);
  if (!diff.empty()) return diff;
  return StatsDifference(reference.generation->stats,
                         response.generation->stats);
}

TEST(CacheChaosTest, NoStaleEpochResultAcrossTwoHundredSeeds) {
  Figure3Fixture fixture;

  // The clean reference: what the request answers in a fault-free world.
  auto lowered = plan::Planner::Lower(Figure3Request(fixture));
  ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
  plan::Executor executor(&fixture.catalog, &fixture.schedule);
  auto reference = executor.Run(*lowered);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_TRUE(reference->generation.has_value());
  ASSERT_TRUE(reference->generation->termination.ok());

  for (uint64_t seed = 1; seed <= 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RequestCache cache;  // Fresh tiers per seed; the epoch registry is
                         // process-global and needs no reset.
    {
      ScopedFaultInjection chaos(ChurnConfig(seed));
      for (int i = 0; i < 6; ++i) {
        SCOPED_TRACE("churn query " + std::to_string(i));
        CacheOutcome outcome = CacheOutcome::kDisabled;
        auto response = cache.Execute(fixture.catalog, fixture.schedule,
                                      Figure3Request(fixture), &outcome);
        ASSERT_TRUE(response.ok()) << response.status().ToString();
        // Law 1: a hit is never a stale or churn-perturbed answer.
        if (outcome == CacheOutcome::kHit) {
          EXPECT_EQ(ResponseDifference(*reference, *response), "");
        }
      }
    }

    // Law 2: after the scope, the injection epoch is unreachable. The
    // first query recomputes from recorded truth...
    CacheOutcome outcome = CacheOutcome::kDisabled;
    auto rebuilt = cache.Execute(fixture.catalog, fixture.schedule,
                                 Figure3Request(fixture), &outcome);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    EXPECT_EQ(outcome, CacheOutcome::kMiss);
    EXPECT_EQ(ResponseDifference(*reference, *rebuilt), "");

    // ...and the second is served warm, still byte-identical.
    auto warm = cache.Execute(fixture.catalog, fixture.schedule,
                              Figure3Request(fixture), &outcome);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    EXPECT_EQ(outcome, CacheOutcome::kHit);
    EXPECT_EQ(ResponseDifference(*reference, *warm), "");
    EXPECT_EQ(rebuilt->generation->stats.runtime_seconds,
              warm->generation->stats.runtime_seconds);
  }
}

}  // namespace
}  // namespace coursenav

// Golden equivalence tests for frontier-batched pruning: for every staged
// candidate, `PruningOracle::ClassifyBatch` must reproduce — verdict for
// verdict and counter for counter — what a `ClassifyChild` loop over the
// same candidates produces. This is the contract that makes the batched
// generators' output byte-identical to the node-at-a-time path.
#include "core/pruning.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "core/engine.h"
#include "core/options.h"
#include "expr/parser.h"
#include "requirements/expr_goal.h"
#include "requirements/goal.h"
#include "util/bitset.h"

namespace coursenav {
namespace {

/// A synthetic many-course world: enough courses that completed sets spill
/// from the bitset's inline words to heap storage, offered across a
/// several-semester window.
struct SyntheticFixture {
  static constexpr int kNumCourses = 200;
  Catalog catalog;
  OfferingSchedule schedule{0};
  Term start{Season::kFall, 2011};
  Term end;

  SyntheticFixture() {
    for (int i = 0; i < kNumCourses; ++i) {
      Course c;
      c.code = "C" + std::to_string(i);
      if (!catalog.AddCourse(std::move(c)).ok()) std::abort();
    }
    if (!catalog.Finalize().ok()) std::abort();
    schedule = OfferingSchedule(catalog.size());
    std::mt19937 rng(1234);
    constexpr int kNumTerms = 6;
    end = start + kNumTerms;
    for (int i = 0; i < kNumCourses; ++i) {
      // Each course runs in two random semesters of the window.
      for (int k = 0; k < 2; ++k) {
        int t = static_cast<int>(rng() % kNumTerms);
        (void)schedule.AddOffering(static_cast<CourseId>(i), start + t);
      }
    }
  }

  DynamicBitset RandomSet(std::mt19937& rng, int max_bits) const {
    DynamicBitset s = catalog.NewCourseSet();
    int bits = static_cast<int>(rng() % static_cast<unsigned>(max_bits + 1));
    for (int i = 0; i < bits; ++i) {
      s.set(static_cast<int>(rng() % kNumCourses));
    }
    return s;
  }
};

/// Runs the same randomized candidate stream through a ClassifyChild loop
/// (reference) and through ClassifyBatch (system under test), on two
/// oracles with identical configuration but separate engines/metrics, and
/// requires identical verdicts and identical pruning-counter deltas.
void RunDifferential(const SyntheticFixture& fix,
                     const std::shared_ptr<const Goal>& goal,
                     const GoalDrivenConfig& config,
                     const ExplorationOptions& options, uint32_t seed) {
  internal::ExplorationEngine ref_engine(fix.catalog, fix.schedule, options,
                                         fix.start, fix.end);
  internal::ExplorationEngine batch_engine(fix.catalog, fix.schedule, options,
                                           fix.start, fix.end);
  internal::PruningOracle ref_oracle(*goal, ref_engine, options, config);
  internal::PruningOracle batch_oracle(*goal, batch_engine, options, config);

  std::mt19937 rng(seed);
  internal::CandidateBatch batch;
  batch.Configure(fix.catalog.size());
  std::vector<internal::PruningOracle::Verdict> batch_verdicts;

  for (int round = 0; round < 20; ++round) {
    // One simulated parent expansion: a parent somewhere in the window
    // staging a variable number of candidate children (including sizes
    // that leave the batch partially full).
    Term parent_term = fix.start + static_cast<int>(rng() % 5);
    Term child_term = parent_term.Next();
    DynamicBitset parent = fix.RandomSet(rng, 40);
    int left_parent = config.enable_time_pruning
                          ? goal->MinCoursesRemaining(parent)
                          : -1;
    size_t num_candidates = 1 + rng() % internal::CandidateBatch::kDefaultCapacity;

    std::vector<DynamicBitset> selections;
    selections.reserve(num_candidates);
    for (size_t i = 0; i < num_candidates; ++i) {
      selections.push_back(fix.RandomSet(rng, options.max_courses_per_term));
    }

    // Reference: node-at-a-time loop.
    std::vector<internal::PruningOracle::Verdict> ref_verdicts;
    for (const DynamicBitset& selection : selections) {
      DynamicBitset child = parent;
      child |= selection;
      ref_verdicts.push_back(ref_oracle.ClassifyChild(
          child, selection.count(), child_term, left_parent));
    }

    // System under test: one staged batch.
    batch.Clear();
    for (const DynamicBitset& selection : selections) {
      batch.Push(parent, selection);
    }
    batch_oracle.ClassifyBatch(batch, child_term, left_parent,
                               &batch_verdicts);

    ASSERT_EQ(batch_verdicts.size(), ref_verdicts.size());
    for (size_t i = 0; i < ref_verdicts.size(); ++i) {
      EXPECT_EQ(batch_verdicts[i], ref_verdicts[i])
          << "seed=" << seed << " round=" << round << " candidate=" << i;
    }
    EXPECT_EQ(batch_engine.metrics().pruned_time,
              ref_engine.metrics().pruned_time)
        << "seed=" << seed << " round=" << round;
    EXPECT_EQ(batch_engine.metrics().pruned_availability,
              ref_engine.metrics().pruned_availability)
        << "seed=" << seed << " round=" << round;
  }
}

std::shared_ptr<const Goal> MonotoneGoal(const SyntheticFixture& fix) {
  std::vector<std::string> codes;
  for (int i = 0; i < 14; ++i) codes.push_back("C" + std::to_string(i * 13));
  auto goal = ExprGoal::CompleteAll(codes, fix.catalog);
  if (!goal.ok()) std::abort();
  return *goal;
}

std::shared_ptr<const Goal> NonMonotoneGoal(const SyntheticFixture& fix) {
  // Negative literals make the goal non-monotone, forcing the uncached
  // batched-availability path and the dead-clause logic in the DNF kernel.
  auto parsed = expr::ParseBoolExpr(
      "(C1 and C2 and not C3) or (C4 and C5 and C6 and not C7) or "
      "(C8 and C9 and C10 and C11)");
  if (!parsed.ok()) std::abort();
  auto goal = ExprGoal::Create(*parsed, fix.catalog);
  if (!goal.ok()) std::abort();
  return *goal;
}

TEST(ClassifyBatchTest, MatchesScalarLoopMonotoneCachedGoal) {
  SyntheticFixture fix;
  ExplorationOptions options;
  options.max_courses_per_term = 4;
  GoalDrivenConfig config;  // defaults: both strategies + cache on
  RunDifferential(fix, MonotoneGoal(fix), config, options, 11);
}

TEST(ClassifyBatchTest, MatchesScalarLoopMonotoneCacheDisabled) {
  SyntheticFixture fix;
  ExplorationOptions options;
  options.max_courses_per_term = 4;
  GoalDrivenConfig config;
  config.cache_availability_checks = false;  // batched availability kernel
  RunDifferential(fix, MonotoneGoal(fix), config, options, 22);
}

TEST(ClassifyBatchTest, MatchesScalarLoopNonMonotoneGoal) {
  SyntheticFixture fix;
  ExplorationOptions options;
  options.max_courses_per_term = 3;
  GoalDrivenConfig config;
  RunDifferential(fix, NonMonotoneGoal(fix), config, options, 33);
}

TEST(ClassifyBatchTest, MatchesScalarLoopCompositeGoal) {
  SyntheticFixture fix;
  std::vector<std::shared_ptr<const Goal>> parts = {MonotoneGoal(fix),
                                                    NonMonotoneGoal(fix)};
  auto goal = std::make_shared<CompositeGoal>(std::move(parts));
  ExplorationOptions options;
  options.max_courses_per_term = 4;
  GoalDrivenConfig config;
  RunDifferential(fix, goal, config, options, 44);
}

TEST(ClassifyBatchTest, MatchesScalarLoopTimeOnly) {
  SyntheticFixture fix;
  ExplorationOptions options;
  options.max_courses_per_term = 2;  // tight loads: time pruning bites hard
  GoalDrivenConfig config;
  config.enable_availability_pruning = false;
  RunDifferential(fix, MonotoneGoal(fix), config, options, 55);
}

TEST(ClassifyBatchTest, MatchesScalarLoopAvailabilityOnly) {
  SyntheticFixture fix;
  ExplorationOptions options;
  options.max_courses_per_term = 4;
  GoalDrivenConfig config;
  config.enable_time_pruning = false;
  RunDifferential(fix, MonotoneGoal(fix), config, options, 66);
}

TEST(CandidateBatchTest, PushFusesUnionAndCounts) {
  SyntheticFixture fix;
  internal::CandidateBatch batch;
  batch.Configure(fix.catalog.size(), /*capacity=*/4);
  EXPECT_TRUE(batch.empty());
  EXPECT_FALSE(batch.full());

  std::mt19937 rng(99);
  DynamicBitset parent = fix.RandomSet(rng, 30);
  DynamicBitset selection = fix.RandomSet(rng, 5);
  batch.Push(parent, selection);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.selection_size(0), selection.count());

  DynamicBitset completed_out(fix.catalog.size());
  DynamicBitset selection_out(fix.catalog.size());
  batch.CopyCompletedTo(0, &completed_out);
  batch.CopySelectionTo(0, &selection_out);
  DynamicBitset expected = parent;
  expected |= selection;
  EXPECT_EQ(completed_out, expected);
  EXPECT_EQ(selection_out, selection);

  for (int i = 0; i < 3; ++i) batch.Push(parent, selection);
  EXPECT_TRUE(batch.full());
  batch.Clear();
  EXPECT_TRUE(batch.empty());
}

}  // namespace
}  // namespace coursenav

#include "util/bitset.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "util/random.h"

namespace coursenav {
namespace {

TEST(DynamicBitsetTest, StartsEmpty) {
  DynamicBitset b(40);
  EXPECT_EQ(b.universe_size(), 40);
  EXPECT_EQ(b.count(), 0);
  EXPECT_TRUE(b.empty());
  for (int i = 0; i < 40; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynamicBitsetTest, SetResetTest) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_EQ(b.count(), 4);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_FALSE(b.test(1));
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3);
}

TEST(DynamicBitsetTest, FromIndicesAndToIndicesRoundTrip) {
  std::vector<int> ids = {3, 7, 21, 37};
  DynamicBitset b = DynamicBitset::FromIndices(38, ids);
  EXPECT_EQ(b.ToIndices(), ids);
}

TEST(DynamicBitsetTest, ClearEmptiesTheSet) {
  DynamicBitset b = DynamicBitset::FromIndices(38, {1, 2, 3});
  b.clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.universe_size(), 38);
}

TEST(DynamicBitsetTest, UnionIntersectionSubtract) {
  DynamicBitset a = DynamicBitset::FromIndices(10, {1, 2, 3});
  DynamicBitset b = DynamicBitset::FromIndices(10, {3, 4});
  EXPECT_EQ((a | b).ToIndices(), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ((a & b).ToIndices(), (std::vector<int>{3}));
  DynamicBitset c = a;
  c.Subtract(b);
  EXPECT_EQ(c.ToIndices(), (std::vector<int>{1, 2}));
}

TEST(DynamicBitsetTest, SubsetAndIntersects) {
  DynamicBitset small = DynamicBitset::FromIndices(10, {1, 2});
  DynamicBitset big = DynamicBitset::FromIndices(10, {1, 2, 3});
  DynamicBitset other = DynamicBitset::FromIndices(10, {4});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_TRUE(small.Intersects(big));
  EXPECT_FALSE(small.Intersects(other));
  DynamicBitset empty(10);
  EXPECT_TRUE(empty.IsSubsetOf(small));
  EXPECT_FALSE(empty.Intersects(small));
}

TEST(DynamicBitsetTest, EqualityRequiresSameUniverse) {
  DynamicBitset a = DynamicBitset::FromIndices(10, {1});
  DynamicBitset b = DynamicBitset::FromIndices(11, {1});
  DynamicBitset c = DynamicBitset::FromIndices(10, {1});
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a == c);
}

TEST(DynamicBitsetTest, ForEachVisitsAscending) {
  DynamicBitset b = DynamicBitset::FromIndices(130, {0, 64, 127, 129});
  std::vector<int> seen;
  b.ForEach([&](int id) { seen.push_back(id); });
  EXPECT_EQ(seen, (std::vector<int>{0, 64, 127, 129}));
}

TEST(DynamicBitsetTest, HashDiffersForDifferentSets) {
  DynamicBitset a = DynamicBitset::FromIndices(38, {1, 2});
  DynamicBitset b = DynamicBitset::FromIndices(38, {1, 3});
  DynamicBitset c = DynamicBitset::FromIndices(38, {1, 2});
  EXPECT_EQ(a.Hash(), c.Hash());
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(DynamicBitsetTest, ToStringRendersSortedIds) {
  DynamicBitset b = DynamicBitset::FromIndices(10, {7, 1});
  EXPECT_EQ(b.ToString(), "{1, 7}");
  EXPECT_EQ(DynamicBitset(5).ToString(), "{}");
}

TEST(DynamicBitsetTest, InlineStorageReportsNoHeap) {
  // Up to 128 elements the words live inline.
  EXPECT_EQ(DynamicBitset(38).MemoryUsage(), 0u);
  EXPECT_EQ(DynamicBitset(128).MemoryUsage(), 0u);
  EXPECT_GT(DynamicBitset(129).MemoryUsage(), 0u);
}

TEST(DynamicBitsetTest, MoveLeavesValueIntact) {
  DynamicBitset a = DynamicBitset::FromIndices(200, {5, 150});
  DynamicBitset b = std::move(a);
  EXPECT_EQ(b.ToIndices(), (std::vector<int>{5, 150}));
}

TEST(DynamicBitsetTest, CopyAssignAcrossStorageKinds) {
  // Same-size heap assignment reuses the destination's words in place.
  DynamicBitset heap_a = DynamicBitset::FromIndices(200, {5, 150});
  DynamicBitset heap_b = DynamicBitset::FromIndices(200, {7, 199});
  heap_b = heap_a;
  EXPECT_EQ(heap_b.ToIndices(), (std::vector<int>{5, 150}));
  // Mutating the copy must not alias the source.
  heap_b.set(60);
  EXPECT_EQ(heap_a.ToIndices(), (std::vector<int>{5, 150}));

  // Inline -> heap and heap -> inline transitions.
  DynamicBitset small = DynamicBitset::FromIndices(38, {3});
  small = heap_a;
  EXPECT_EQ(small.ToIndices(), (std::vector<int>{5, 150}));
  DynamicBitset big = DynamicBitset::FromIndices(200, {150});
  big = DynamicBitset::FromIndices(38, {3});
  EXPECT_EQ(big.universe_size(), 38);
  EXPECT_EQ(big.ToIndices(), (std::vector<int>{3}));

  // Same-size inline assignment.
  DynamicBitset in_a = DynamicBitset::FromIndices(100, {0, 99});
  DynamicBitset in_b = DynamicBitset::FromIndices(100, {50});
  in_b = in_a;
  EXPECT_EQ(in_b.ToIndices(), (std::vector<int>{0, 99}));

  // Self-assignment is a no-op.
  DynamicBitset& self = heap_a;
  heap_a = self;
  EXPECT_EQ(heap_a.ToIndices(), (std::vector<int>{5, 150}));
}

TEST(DynamicBitsetTest, WordAccessAndAssignWords) {
  for (int universe : {38, 130, 200}) {
    DynamicBitset a = DynamicBitset::FromIndices(universe, {1, 36});
    size_t words = a.word_count();
    EXPECT_EQ(words, (static_cast<size_t>(universe) + 63) / 64);
    EXPECT_EQ(a.word_data()[0], (uint64_t{1} << 1) | (uint64_t{1} << 36));

    DynamicBitset b(universe);
    b.AssignWords(a.word_data());
    EXPECT_EQ(b, a);

    DynamicBitset c = DynamicBitset::FromWords(universe, a.word_data());
    EXPECT_EQ(c, a);
  }
}

/// Property sweep: set algebra agrees with std::set reference across
/// universe sizes straddling the word and inline-storage boundaries.
class BitsetPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BitsetPropertyTest, MatchesReferenceSetSemantics) {
  const int n = GetParam();
  Random rng(static_cast<uint64_t>(n) * 977);
  for (int iter = 0; iter < 50; ++iter) {
    std::set<int> ref_a, ref_b;
    DynamicBitset a(n), b(n);
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.3)) {
        a.set(i);
        ref_a.insert(i);
      }
      if (rng.Bernoulli(0.3)) {
        b.set(i);
        ref_b.insert(i);
      }
    }
    // count / test
    EXPECT_EQ(a.count(), static_cast<int>(ref_a.size()));
    // union
    std::set<int> ref_union = ref_a;
    ref_union.insert(ref_b.begin(), ref_b.end());
    EXPECT_EQ((a | b).ToIndices(),
              std::vector<int>(ref_union.begin(), ref_union.end()));
    // intersection
    std::set<int> ref_inter;
    for (int v : ref_a) {
      if (ref_b.count(v)) ref_inter.insert(v);
    }
    EXPECT_EQ((a & b).ToIndices(),
              std::vector<int>(ref_inter.begin(), ref_inter.end()));
    // difference
    DynamicBitset diff = a;
    diff.Subtract(b);
    std::set<int> ref_diff;
    for (int v : ref_a) {
      if (!ref_b.count(v)) ref_diff.insert(v);
    }
    EXPECT_EQ(diff.ToIndices(),
              std::vector<int>(ref_diff.begin(), ref_diff.end()));
    // subset / intersects
    EXPECT_EQ(a.IsSubsetOf(b),
              std::includes(ref_b.begin(), ref_b.end(), ref_a.begin(),
                            ref_a.end()));
    EXPECT_EQ(a.Intersects(b), !ref_inter.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(UniverseSizes, BitsetPropertyTest,
                         ::testing::Values(1, 7, 38, 63, 64, 65, 127, 128,
                                           129, 200));

}  // namespace
}  // namespace coursenav

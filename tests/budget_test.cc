// Budget-behaviour tests: every generator must stop cleanly — partial
// results plus the right termination status — on node, memory, and
// wall-clock budgets (the machinery behind Table 2's N/A cells).

#include <gtest/gtest.h>

#include "core/counting.h"
#include "core/deadline_generator.h"
#include "core/goal_generator.h"
#include "core/ranked_generator.h"
#include "data/brandeis_cs.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

class BudgetTest : public ::testing::Test {
 protected:
  data::BrandeisDataset dataset_ = data::BuildBrandeisDataset();
  Term end_ = data::EvaluationEndTerm();

  EnrollmentStatus Start(int span) {
    return {data::StartTermForSpan(span), dataset_.catalog.NewCourseSet()};
  }
};

TEST_F(BudgetTest, DeadlineNodeBudget) {
  ExplorationOptions options;
  options.limits.max_nodes = 1000;
  auto result = GenerateDeadlineDrivenPaths(dataset_.catalog,
                                            dataset_.schedule, Start(5),
                                            end_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.IsResourceExhausted());
  EXPECT_LE(result->graph.num_nodes(), 1001);
}

TEST_F(BudgetTest, DeadlineMemoryBudget) {
  ExplorationOptions options;
  options.limits.max_memory_bytes = 64 * 1024;
  auto result = GenerateDeadlineDrivenPaths(dataset_.catalog,
                                            dataset_.schedule, Start(5),
                                            end_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.IsResourceExhausted());
  EXPECT_NE(result->termination.message().find("memory"),
            std::string::npos);
}

TEST_F(BudgetTest, GoalTimeBudget) {
  ExplorationOptions options;
  options.limits.max_seconds = 1e-9;  // expires immediately
  auto result = GenerateGoalDrivenPaths(dataset_.catalog, dataset_.schedule,
                                        Start(6), end_, *dataset_.cs_major,
                                        options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.IsDeadlineExceeded());
  // The graph is partial but structurally sound.
  EXPECT_GE(result->graph.num_nodes(), 1);
}

TEST_F(BudgetTest, RankedNodeBudgetReturnsPartialPaths) {
  ExplorationOptions options;
  options.limits.max_nodes = 500;
  TimeRanking ranking;
  auto result = GenerateRankedPaths(dataset_.catalog, dataset_.schedule,
                                    Start(6), end_, *dataset_.cs_major,
                                    ranking, 1000, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.IsResourceExhausted());
  EXPECT_LT(result->paths.size(), 1000u);
}

TEST_F(BudgetTest, CountingBudgetsAreErrors) {
  // Counting cannot return partial counts meaningfully; budgets fail.
  ExplorationOptions options;
  options.limits.max_nodes = 100;
  EXPECT_TRUE(CountGoalDrivenPaths(dataset_.catalog, dataset_.schedule,
                                   Start(6), end_, *dataset_.cs_major,
                                   options)
                  .status()
                  .IsResourceExhausted());
  ExplorationOptions timed;
  timed.limits.max_seconds = 1e-9;
  EXPECT_TRUE(CountDeadlineDrivenPaths(dataset_.catalog, dataset_.schedule,
                                       Start(5), end_, timed)
                  .status()
                  .IsDeadlineExceeded());
}

TEST_F(BudgetTest, UnlimitedBudgetsRunToCompletion) {
  ExplorationOptions options;  // all limits zero = unlimited
  auto result = GenerateGoalDrivenPaths(dataset_.catalog, dataset_.schedule,
                                        Start(4), end_, *dataset_.cs_major,
                                        options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.ok());
}

}  // namespace
}  // namespace coursenav

// Budget-behaviour tests: every generator must stop cleanly — partial
// results plus the right termination status — on node, memory, and
// wall-clock budgets (the machinery behind Table 2's N/A cells).

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/counting.h"
#include "core/deadline_generator.h"
#include "core/goal_generator.h"
#include "core/ranked_generator.h"
#include "data/brandeis_cs.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

class BudgetTest : public ::testing::Test {
 protected:
  data::BrandeisDataset dataset_ = data::BuildBrandeisDataset();
  Term end_ = data::EvaluationEndTerm();

  EnrollmentStatus Start(int span) {
    return {data::StartTermForSpan(span), dataset_.catalog.NewCourseSet()};
  }
};

TEST_F(BudgetTest, DeadlineNodeBudget) {
  ExplorationOptions options;
  options.limits.max_nodes = 1000;
  auto result = GenerateDeadlineDrivenPaths(dataset_.catalog,
                                            dataset_.schedule, Start(5),
                                            end_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.IsResourceExhausted());
  EXPECT_LE(result->graph.num_nodes(), 1001);
}

TEST_F(BudgetTest, DeadlineMemoryBudget) {
  ExplorationOptions options;
  options.limits.max_memory_bytes = 64 * 1024;
  auto result = GenerateDeadlineDrivenPaths(dataset_.catalog,
                                            dataset_.schedule, Start(5),
                                            end_, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.IsResourceExhausted());
  EXPECT_NE(result->termination.message().find("memory"),
            std::string::npos);
}

TEST_F(BudgetTest, GoalTimeBudget) {
  ExplorationOptions options;
  options.limits.max_seconds = 1e-9;  // expires immediately
  auto result = GenerateGoalDrivenPaths(dataset_.catalog, dataset_.schedule,
                                        Start(6), end_, *dataset_.cs_major,
                                        options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.IsDeadlineExceeded());
  // The graph is partial but structurally sound.
  EXPECT_GE(result->graph.num_nodes(), 1);
}

TEST_F(BudgetTest, RankedNodeBudgetReturnsPartialPaths) {
  ExplorationOptions options;
  options.limits.max_nodes = 500;
  TimeRanking ranking;
  auto result = GenerateRankedPaths(dataset_.catalog, dataset_.schedule,
                                    Start(6), end_, *dataset_.cs_major,
                                    ranking, 1000, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.IsResourceExhausted());
  EXPECT_LT(result->paths.size(), 1000u);
}

TEST_F(BudgetTest, CountingBudgetsAreErrors) {
  // Counting cannot return partial counts meaningfully; budgets fail.
  ExplorationOptions options;
  options.limits.max_nodes = 100;
  EXPECT_TRUE(CountGoalDrivenPaths(dataset_.catalog, dataset_.schedule,
                                   Start(6), end_, *dataset_.cs_major,
                                   options)
                  .status()
                  .IsResourceExhausted());
  ExplorationOptions timed;
  timed.limits.max_seconds = 1e-9;
  EXPECT_TRUE(CountDeadlineDrivenPaths(dataset_.catalog, dataset_.schedule,
                                       Start(5), end_, timed)
                  .status()
                  .IsDeadlineExceeded());
}

TEST_F(BudgetTest, UnlimitedBudgetsRunToCompletion) {
  ExplorationOptions options;  // all limits zero = unlimited
  auto result = GenerateGoalDrivenPaths(dataset_.catalog, dataset_.schedule,
                                        Start(4), end_, *dataset_.cs_major,
                                        options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.ok());
}

// ---------------------------------------------------------------------------
// The full generator × limit matrix: every generator, starved of each
// resource in turn, must come back ok() with the documented termination
// status and a structurally valid partial result.

enum class GeneratorKind { kDeadline, kGoal, kRanked };
enum class LimitKind { kNodes, kMemory, kTime };

std::string KindName(GeneratorKind kind) {
  switch (kind) {
    case GeneratorKind::kDeadline: return "Deadline";
    case GeneratorKind::kGoal: return "Goal";
    case GeneratorKind::kRanked: return "Ranked";
  }
  return "?";
}

std::string KindName(LimitKind kind) {
  switch (kind) {
    case LimitKind::kNodes: return "NodeBudget";
    case LimitKind::kMemory: return "MemoryBudget";
    case LimitKind::kTime: return "TimeBudget";
  }
  return "?";
}

class BudgetMatrixTest
    : public ::testing::TestWithParam<std::tuple<GeneratorKind, LimitKind>> {
 protected:
  data::BrandeisDataset dataset_ = data::BuildBrandeisDataset();
  Term end_ = data::EvaluationEndTerm();

  EnrollmentStatus Start(int span) {
    return {data::StartTermForSpan(span), dataset_.catalog.NewCourseSet()};
  }

  ExplorationOptions StarvedOptions() const {
    ExplorationOptions options;
    switch (std::get<1>(GetParam())) {
      case LimitKind::kNodes: options.limits.max_nodes = 500; break;
      case LimitKind::kMemory:
        options.limits.max_memory_bytes = 64 * 1024;
        break;
      case LimitKind::kTime: options.limits.max_seconds = 1e-9; break;
    }
    return options;
  }

  void ExpectDocumentedStatus(const Status& termination) {
    switch (std::get<1>(GetParam())) {
      case LimitKind::kNodes:
      case LimitKind::kMemory:
        EXPECT_TRUE(termination.IsResourceExhausted())
            << termination.ToString();
        break;
      case LimitKind::kTime:
        EXPECT_TRUE(termination.IsDeadlineExceeded())
            << termination.ToString();
        break;
    }
  }
};

TEST_P(BudgetMatrixTest, StarvedGeneratorReturnsValidPartialResult) {
  ExplorationOptions options = StarvedOptions();
  // Span 6 blows up far past every starved limit for all three generators.
  EnrollmentStatus start = Start(6);

  if (std::get<0>(GetParam()) == GeneratorKind::kRanked) {
    TimeRanking ranking;
    auto result = GenerateRankedPaths(dataset_.catalog, dataset_.schedule,
                                      start, end_, *dataset_.cs_major,
                                      ranking, 1000, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectDocumentedStatus(result->termination);
    EXPECT_LT(result->paths.size(), 1000u);
    for (const LearningPath& path : result->paths) {
      EXPECT_TRUE(path.Validate(dataset_.catalog, dataset_.schedule).ok());
    }
    return;
  }

  Result<GenerationResult> result =
      std::get<0>(GetParam()) == GeneratorKind::kDeadline
          ? GenerateDeadlineDrivenPaths(dataset_.catalog, dataset_.schedule,
                                        start, end_, options)
          : GenerateGoalDrivenPaths(dataset_.catalog, dataset_.schedule,
                                    start, end_, *dataset_.cs_major, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectDocumentedStatus(result->termination);
  EXPECT_EQ(testing_util::StructureErrors(result->graph), "");
  EXPECT_EQ(testing_util::StatsErrors(result->graph, result->stats), "");
  if (options.limits.max_nodes > 0) {
    // The budget is checked per enumerated selection, so at most one child
    // may overshoot the cap.
    EXPECT_LE(result->graph.num_nodes(), options.limits.max_nodes + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGeneratorsAllLimits, BudgetMatrixTest,
    ::testing::Combine(::testing::Values(GeneratorKind::kDeadline,
                                         GeneratorKind::kGoal,
                                         GeneratorKind::kRanked),
                       ::testing::Values(LimitKind::kNodes,
                                         LimitKind::kMemory,
                                         LimitKind::kTime)),
    [](const ::testing::TestParamInfo<BudgetMatrixTest::ParamType>& param) {
      return KindName(std::get<0>(param.param)) +
             KindName(std::get<1>(param.param));
    });

}  // namespace
}  // namespace coursenav

// Request-scoped tracing and admin-plane tests: trace_id propagation, span
// trees returned over a live socket, the admin endpoints (/metrics,
// /healthz, /statusz) both transport-free and over HTTP, and the
// trace <-> serve-metrics reconciliation under concurrent workers. Socket
// tests skip gracefully when the sandbox refuses loopback sockets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/brandeis_cs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/admin.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/socket_server.h"
#include "util/json.h"
#include "util/status.h"

namespace coursenav::serve {
namespace {

const data::BrandeisDataset& Dataset() {
  static const data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  return dataset;
}

/// A small deadline-driven exploration document that executes in a few
/// milliseconds (mirrors serve_test's TinyRequestDoc).
JsonValue TinyRequestDoc() {
  JsonValue::Object start;
  start["term"] = JsonValue("Spring 2015");
  JsonValue::Object limits;
  limits["max_nodes"] = JsonValue(static_cast<int64_t>(5000));
  JsonValue::Object options;
  options["limits"] = JsonValue(std::move(limits));
  JsonValue::Object request;
  request["start"] = JsonValue(std::move(start));
  request["end_term"] = JsonValue("Fall 2015");
  request["type"] = JsonValue("deadline");
  request["options"] = JsonValue(std::move(options));
  return JsonValue(std::move(request));
}

std::string TracedPayload(std::string_view tenant, std::string_view id,
                          std::string_view trace_id = "") {
  return MakeRequestEnvelope(tenant, id, 2000.0, TinyRequestDoc(),
                             /*degrade=*/std::nullopt, /*full_payload=*/false,
                             /*want_trace=*/true, trace_id)
      .Dump();
}

/// Collects the span names from a ResponseEnvelope's trace array. Only
/// referenced when tracing is compiled in.
[[maybe_unused]] std::multiset<std::string> SpanNames(const JsonValue& trace) {
  std::multiset<std::string> names;
  if (!trace.is_array()) return names;
  for (const JsonValue& span : trace.array()) {
    Result<JsonValue> name = span.Get("name");
    if (name.ok() && name->is_string()) {
      names.insert(*name->GetString());
    }
  }
  return names;
}

const obs::MetricSnapshot* FindMetric(
    const std::vector<obs::MetricSnapshot>& snapshot, const std::string& name,
    obs::MetricKind kind) {
  for (const obs::MetricSnapshot& metric : snapshot) {
    if (metric.kind == kind && metric.name == name) return &metric;
  }
  return nullptr;
}

int64_t HistogramSum(const std::vector<obs::MetricSnapshot>& snapshot,
                     std::string_view name) {
  const obs::MetricSnapshot* metric = FindMetric(
      snapshot, std::string(name), obs::MetricKind::kHistogram);
  return metric != nullptr ? metric->sum : 0;
}

int64_t HistogramCount(const std::vector<obs::MetricSnapshot>& snapshot,
                       std::string_view name) {
  const obs::MetricSnapshot* metric = FindMetric(
      snapshot, std::string(name), obs::MetricKind::kHistogram);
  return metric != nullptr ? metric->value : 0;
}

TEST(TraceIdTest, ClientSuppliedIdIsEchoed) {
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule);
  server.Start();
  ResponseEnvelope response =
      server.HandleRequest(TracedPayload("alice", "r1", "my-trace.001"));
  EXPECT_EQ(response.outcome, ResponseOutcome::kOk)
      << response.status.ToString();
  EXPECT_EQ(response.trace_id, "my-trace.001");
  server.Shutdown();
}

TEST(TraceIdTest, ServerGeneratesIdWhenAbsent) {
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule);
  server.Start();
  ResponseEnvelope response =
      server.HandleRequest(TracedPayload("alice", "r1"));
  EXPECT_EQ(response.outcome, ResponseOutcome::kOk);
  ASSERT_FALSE(response.trace_id.empty());
  EXPECT_EQ(response.trace_id.substr(0, 4), "srv-");
  server.Shutdown();
}

TEST(TraceIdTest, HostileTraceIdIsRejected) {
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule);
  server.Start();
  JsonValue envelope = MakeRequestEnvelope("alice", "r1", 2000.0,
                                           TinyRequestDoc());
  envelope.object()["trace_id"] = JsonValue("no spaces\nor newlines");
  ResponseEnvelope response = server.HandleRequest(envelope.Dump());
  EXPECT_EQ(response.outcome, ResponseOutcome::kRejected);
  server.Shutdown();
}

TEST(TraceIdTest, RejectedEnvelopesStillCarryTheirTraceId) {
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule);
  server.Start();
  // Schema-invalid inner request: the envelope (and its trace_id) parsed.
  JsonValue envelope = MakeRequestEnvelope("alice", "r1", 2000.0,
                                           JsonValue(JsonValue::Object{}),
                                           std::nullopt, false, false,
                                           "rej-trace");
  ResponseEnvelope response = server.HandleRequest(envelope.Dump());
  EXPECT_EQ(response.outcome, ResponseOutcome::kRejected);
  EXPECT_EQ(response.trace_id, "rej-trace");
  server.Shutdown();
}

TEST(TraceOptInTest, NoOptInMeansNoSpanTree) {
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule);
  server.Start();
  JsonValue envelope =
      MakeRequestEnvelope("alice", "r1", 2000.0, TinyRequestDoc());
  ResponseEnvelope response = server.HandleRequest(envelope.Dump());
  EXPECT_EQ(response.outcome, ResponseOutcome::kOk);
  EXPECT_TRUE(response.trace.is_null());
  server.Shutdown();
}

TEST(TraceOptInTest, OptInReturnsSpanTreeCoveringAllStages) {
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule);
  server.Start();
  ResponseEnvelope response =
      server.HandleRequest(TracedPayload("alice", "r1"));
  ASSERT_EQ(response.outcome, ResponseOutcome::kOk)
      << response.status.ToString();
#if COURSENAV_TRACING
  ASSERT_TRUE(response.trace.is_array());
  const std::multiset<std::string> names = SpanNames(response.trace);
  EXPECT_EQ(names.count(std::string(obs::kSpanServeRequest)), 1u);
  EXPECT_EQ(names.count(std::string(obs::kSpanServeAdmissionWait)), 1u);
  EXPECT_EQ(names.count(std::string(obs::kSpanServeClamp)), 1u);
  EXPECT_GE(names.count(std::string(obs::kSpanPlanLower)), 1u);
  // The admission-wait and clamp intervals are children of the root
  // serve/request span, so the whole request is one connected tree.
  int64_t root_id = 0;
  for (const JsonValue& span : response.trace.array()) {
    if (*span.Get("name")->GetString() == obs::kSpanServeRequest) {
      root_id = *span.Get("span_id")->GetInt();
      EXPECT_EQ(*span.Get("parent_id")->GetInt(), 0);
    }
  }
  ASSERT_GT(root_id, 0);
  for (const JsonValue& span : response.trace.array()) {
    const std::string name = *span.Get("name")->GetString();
    if (name == obs::kSpanServeAdmissionWait ||
        name == obs::kSpanServeClamp) {
      EXPECT_EQ(*span.Get("parent_id")->GetInt(), root_id) << name;
    }
  }
#else
  // Tracing compiled out: the opt-in degrades to the id echo alone.
  EXPECT_TRUE(response.trace.is_null());
  EXPECT_FALSE(response.trace_id.empty());
#endif
  server.Shutdown();
}

TEST(TraceOptInTest, SpanTreeRoundTripsOverTheSocket) {
  ExplorationServer core(&Dataset().catalog, &Dataset().schedule);
  core.Start();
  SocketServer transport(&core);
  Status started = transport.Start();
  if (!started.ok()) {
    core.Shutdown();
    GTEST_SKIP() << "loopback sockets unavailable: " << started.ToString();
  }
  Result<ServeClient> client =
      ServeClient::Connect("127.0.0.1", transport.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<ResponseEnvelope> response =
      client->CallEnvelope(TracedPayload("alice", "sock-1", "wire-trace"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->outcome, ResponseOutcome::kOk);
  EXPECT_EQ(response->trace_id, "wire-trace");
#if COURSENAV_TRACING
  const std::multiset<std::string> names = SpanNames(response->trace);
  EXPECT_EQ(names.count(std::string(obs::kSpanServeRequest)), 1u);
  EXPECT_EQ(names.count(std::string(obs::kSpanServeAdmissionWait)), 1u);
  EXPECT_GE(names.count(std::string(obs::kSpanPlanLower)), 1u);
#endif
  transport.Stop();
  core.Shutdown();
}

TEST(AdminPlaneTest, HealthzFollowsTheServerLifecycle) {
  ExplorationServer core(&Dataset().catalog, &Dataset().schedule);
  AdminServer admin(&core);
  EXPECT_EQ(admin.HandleGet("/healthz").status_code, 503);  // idle
  core.Start();
  AdminServer::HttpResponse healthy = admin.HandleGet("/healthz");
  EXPECT_EQ(healthy.status_code, 200);
  EXPECT_EQ(healthy.body, "serving\n");
  core.Shutdown();
  EXPECT_EQ(admin.HandleGet("/healthz").status_code, 503);  // stopped
}

TEST(AdminPlaneTest, MetricsServesPerTenantLatencySeries) {
  ExplorationServer core(&Dataset().catalog, &Dataset().schedule);
  core.Start();
  for (int i = 0; i < 3; ++i) {
    core.HandleRequest(TracedPayload("metrics-tenant", "m" + std::to_string(i)));
  }
  AdminServer admin(&core);
  AdminServer::HttpResponse response = admin.HandleGet("/metrics");
  EXPECT_EQ(response.status_code, 200);
  EXPECT_NE(response.body.find(
                "coursenav_serve_tenant_service_us_count{tenant=\"metrics-"
                "tenant\"} 3"),
            std::string::npos)
      << response.body;
  EXPECT_NE(response.body.find("coursenav_trace_dropped_spans"),
            std::string::npos);
  EXPECT_NE(response.body.find("coursenav_metrics_interned_names"),
            std::string::npos);
  core.Shutdown();
}

TEST(AdminPlaneTest, StatuszReportsSloAndRecorder) {
  ServerConfig config;
  config.trace_sample_every = 1;
  ExplorationServer core(&Dataset().catalog, &Dataset().schedule, config);
  core.Start();
  for (int i = 0; i < 4; ++i) {
    ResponseEnvelope response =
        core.HandleRequest(TracedPayload("statusz-tenant", std::to_string(i)));
    ASSERT_EQ(response.outcome, ResponseOutcome::kOk);
  }
  AdminServer admin(&core);
  AdminServer::HttpResponse plain = admin.HandleGet("/statusz");
  EXPECT_EQ(plain.status_code, 200);
  Result<JsonValue> parsed = JsonValue::Parse(plain.body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed->Get("state")->GetString(), "serving");
  EXPECT_GT(*parsed->Get("uptime_seconds")->GetNumber(), 0.0);
  EXPECT_EQ(*parsed->Get("requests")->Get("ok")->GetInt(), 4);
  const JsonValue tenant_slo =
      *parsed->Get("slo")->Get("tenants")->Get("statusz-tenant");
  EXPECT_EQ(*tenant_slo.Get("deadline_met")->GetInt(), 4);
  EXPECT_EQ(*tenant_slo.Get("attainment")->GetNumber(), 1.0);
  EXPECT_TRUE(*tenant_slo.Get("meets_target")->GetBool());
  EXPECT_EQ(*parsed->Get("recorder")->Get("total_recorded")->GetInt(), 4);
  EXPECT_FALSE(parsed->Has("recorder_records"));

  AdminServer::HttpResponse with_records =
      admin.HandleGet("/statusz?recorder=1");
  Result<JsonValue> dumped = JsonValue::Parse(with_records.body);
  ASSERT_TRUE(dumped.ok());
  ASSERT_TRUE(dumped->Has("recorder_records"));
  EXPECT_EQ(dumped->Get("recorder_records")->array().size(), 4u);
  core.Shutdown();
}

TEST(AdminPlaneTest, UnknownTargetIs404) {
  ExplorationServer core(&Dataset().catalog, &Dataset().schedule);
  AdminServer admin(&core);
  EXPECT_EQ(admin.HandleGet("/wrong").status_code, 404);
}

TEST(AdminPlaneTest, ServesHttpOverLoopback) {
  ExplorationServer core(&Dataset().catalog, &Dataset().schedule);
  core.Start();
  // One real request so the serve_* series exist in the global registry
  // even when this test runs in its own process.
  EXPECT_EQ(core.HandleRequest(TracedPayload("admin-tenant", "warm-1")).outcome,
            ResponseOutcome::kOk);
  AdminServer admin(&core);
  Status started = admin.Start();
  if (!started.ok()) {
    core.Shutdown();
    GTEST_SKIP() << "loopback sockets unavailable: " << started.ToString();
  }
  ASSERT_GT(admin.port(), 0);

  Result<AdminServer::HttpResponse> health =
      AdminHttpGet("127.0.0.1", admin.port(), "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status_code, 200);
  EXPECT_EQ(health->body, "serving\n");

  Result<AdminServer::HttpResponse> metrics =
      AdminHttpGet("127.0.0.1", admin.port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status_code, 200);
  EXPECT_NE(metrics->content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(metrics->body.find("coursenav_serve_requests_submitted_total"),
            std::string::npos);

  Result<AdminServer::HttpResponse> missing =
      AdminHttpGet("127.0.0.1", admin.port(), "/missing");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status_code, 404);
  EXPECT_EQ(admin.requests_served(), 3);

  admin.Stop();
  core.Shutdown();
}

/// The reconciliation law: with four workers running concurrently, the
/// serve_* histograms must account for every executed request exactly —
/// counts match the number of completions and the sums match the envelope
/// timings (both are derived from the same measured values) — and every
/// returned span tree must cover admission wait through execution.
TEST(ReconciliationTest, SpansAndHistogramsAgreeUnderConcurrency) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;

  const std::vector<obs::MetricSnapshot> before =
      obs::GlobalMetrics().Snapshot();

  ServerConfig config;
  config.num_workers = 4;
  config.trace_sample_every = 1;
  // Uncached: the law below asserts every request's span tree includes the
  // plan-lowering stage, which a request-cache hit legitimately skips.
  config.enable_cache = false;
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule, config);
  server.Start();

  std::mutex mu;
  std::vector<ResponseEnvelope> responses;
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string tenant = t % 2 == 0 ? "tenant-even" : "tenant-odd";
        ResponseEnvelope response = server.HandleRequest(TracedPayload(
            tenant, std::to_string(t) + "-" + std::to_string(i)));
        std::lock_guard<std::mutex> lock(mu);
        responses.push_back(std::move(response));
      }
    });
  }
  for (std::thread& client : clients) client.join();
  const ServerStats stats = server.Stats();
  server.Shutdown();

  ASSERT_EQ(responses.size(),
            static_cast<size_t>(kThreads) * kPerThread);
  int64_t expected_service_us = 0;
  int64_t expected_wait_us = 0;
  std::map<std::string, int64_t> per_tenant;
  for (const ResponseEnvelope& response : responses) {
    ASSERT_EQ(response.outcome, ResponseOutcome::kOk)
        << response.status.ToString();
    expected_service_us += static_cast<int64_t>(response.service_ms * 1e3);
    expected_wait_us += static_cast<int64_t>(response.queue_wait_ms * 1e3);
    ++per_tenant[response.tenant];
#if COURSENAV_TRACING
    // Span tree covers the whole request: admission wait, clamp, and the
    // executor ran under the root span.
    const std::multiset<std::string> names = SpanNames(response.trace);
    ASSERT_EQ(names.count(std::string(obs::kSpanServeRequest)), 1u);
    ASSERT_EQ(names.count(std::string(obs::kSpanServeAdmissionWait)), 1u);
    ASSERT_EQ(names.count(std::string(obs::kSpanServeClamp)), 1u);
    ASSERT_GE(names.count(std::string(obs::kSpanPlanLower)), 1u);
    // The admission-wait span and the envelope's queue_wait_ms are two
    // renderings of the same measured interval.
    for (const JsonValue& span : response.trace.array()) {
      if (*span.Get("name")->GetString() == obs::kSpanServeAdmissionWait) {
        const int64_t wait_us = *span.Get("dur_us")->GetInt();
        EXPECT_NEAR(static_cast<double>(wait_us),
                    response.queue_wait_ms * 1e3, 2.0);
      }
    }
#endif
  }

  // Histogram deltas reconcile with the envelopes exactly: PublishMetrics
  // observes the same casts this test recomputes.
  const std::vector<obs::MetricSnapshot> after =
      obs::GlobalMetrics().Snapshot();
  const int64_t total = kThreads * kPerThread;
  EXPECT_EQ(HistogramCount(after, obs::kMetricServeServiceMicros) -
                HistogramCount(before, obs::kMetricServeServiceMicros),
            total);
  EXPECT_EQ(HistogramSum(after, obs::kMetricServeServiceMicros) -
                HistogramSum(before, obs::kMetricServeServiceMicros),
            expected_service_us);
  EXPECT_EQ(HistogramCount(after, obs::kMetricServeQueueWaitMicros) -
                HistogramCount(before, obs::kMetricServeQueueWaitMicros),
            total);
  EXPECT_EQ(HistogramSum(after, obs::kMetricServeQueueWaitMicros) -
                HistogramSum(before, obs::kMetricServeQueueWaitMicros),
            expected_wait_us);

  // Per-tenant labeled histograms carry the same totals, tenant by tenant.
  for (const auto& [tenant, count] : per_tenant) {
    const std::string labeled = obs::LabeledMetricName(
        obs::kMetricServeTenantServiceMicros, "tenant", tenant);
    EXPECT_EQ(HistogramCount(after, labeled) - HistogramCount(before, labeled),
              count)
        << tenant;
  }

  // SLO accounting saw every request: all ok within a generous deadline.
  int64_t slo_total = 0;
  for (const auto& [tenant, counters] : stats.slo) {
    slo_total += counters.deadline_met + counters.deadline_missed;
  }
  EXPECT_EQ(slo_total, total);

  // The server-side sink (sample_every=1) kept every request's summary.
  EXPECT_EQ(stats.completed, total);
}

}  // namespace
}  // namespace coursenav::serve

#include "flow/flow_network.h"

#include <gtest/gtest.h>

#include "flow/bipartite.h"
#include "util/random.h"

namespace coursenav::flow {
namespace {

TEST(FlowNetworkTest, SingleEdge) {
  FlowNetwork net(2);
  int e = net.AddEdge(0, 1, 5);
  EXPECT_EQ(EdmondsKarpMaxFlow(&net, 0, 1), 5);
  EXPECT_EQ(net.FlowOn(e), 5);
}

TEST(FlowNetworkTest, SeriesBottleneck) {
  FlowNetwork net(3);
  net.AddEdge(0, 1, 10);
  net.AddEdge(1, 2, 3);
  EXPECT_EQ(EdmondsKarpMaxFlow(&net, 0, 2), 3);
}

TEST(FlowNetworkTest, ParallelPathsSum) {
  FlowNetwork net(4);
  net.AddEdge(0, 1, 2);
  net.AddEdge(1, 3, 2);
  net.AddEdge(0, 2, 3);
  net.AddEdge(2, 3, 3);
  EXPECT_EQ(EdmondsKarpMaxFlow(&net, 0, 3), 5);
}

TEST(FlowNetworkTest, ClassicCLRSExample) {
  // CLRS Figure 26.1: max flow 23.
  FlowNetwork net(6);
  net.AddEdge(0, 1, 16);
  net.AddEdge(0, 2, 13);
  net.AddEdge(1, 2, 10);
  net.AddEdge(2, 1, 4);
  net.AddEdge(1, 3, 12);
  net.AddEdge(3, 2, 9);
  net.AddEdge(2, 4, 14);
  net.AddEdge(4, 3, 7);
  net.AddEdge(3, 5, 20);
  net.AddEdge(4, 5, 4);
  EXPECT_EQ(EdmondsKarpMaxFlow(&net, 0, 5), 23);
  net.ResetFlow();
  EXPECT_EQ(DinicMaxFlow(&net, 0, 5), 23);
}

TEST(FlowNetworkTest, DisconnectedIsZero) {
  FlowNetwork net(4);
  net.AddEdge(0, 1, 5);
  net.AddEdge(2, 3, 5);
  EXPECT_EQ(EdmondsKarpMaxFlow(&net, 0, 3), 0);
}

TEST(FlowNetworkTest, ResetFlowRestoresCapacity) {
  FlowNetwork net(2);
  net.AddEdge(0, 1, 4);
  EXPECT_EQ(DinicMaxFlow(&net, 0, 1), 4);
  EXPECT_EQ(DinicMaxFlow(&net, 0, 1), 0);  // saturated
  net.ResetFlow();
  EXPECT_EQ(DinicMaxFlow(&net, 0, 1), 4);
}

TEST(FlowNetworkTest, ZeroCapacityEdgeCarriesNothing) {
  FlowNetwork net(2);
  net.AddEdge(0, 1, 0);
  EXPECT_EQ(EdmondsKarpMaxFlow(&net, 0, 1), 0);
}

/// Property: Edmonds-Karp and Dinic agree on random graphs.
class FlowAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlowAgreementTest, SolversAgree) {
  Random rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    int n = rng.UniformInt(4, 12);
    FlowNetwork a(n), b(n);
    int edges = rng.UniformInt(n, 3 * n);
    for (int e = 0; e < edges; ++e) {
      int from = rng.UniformInt(0, n - 1);
      int to = rng.UniformInt(0, n - 1);
      if (from == to) continue;
      int64_t cap = rng.UniformInt(0, 10);
      a.AddEdge(from, to, cap);
      b.AddEdge(from, to, cap);
    }
    EXPECT_EQ(EdmondsKarpMaxFlow(&a, 0, n - 1), DinicMaxFlow(&b, 0, n - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowAgreementTest,
                         ::testing::Values(101, 202, 303, 404, 505));

// ------------------------------------------------------------- bipartite

TEST(BipartiteMatcherTest, PerfectMatching) {
  BipartiteMatcher matcher(3, 3);
  matcher.AddEdge(0, 0);
  matcher.AddEdge(1, 1);
  matcher.AddEdge(2, 2);
  EXPECT_EQ(matcher.MaxMatching(), 3);
  EXPECT_EQ(matcher.MatchOfLeft(0), 0);
  EXPECT_EQ(matcher.MatchOfRight(2), 2);
}

TEST(BipartiteMatcherTest, RequiresAugmentingPaths) {
  // Greedy left-to-right would match 0-0 and strand 1; Hopcroft-Karp finds
  // the perfect matching.
  BipartiteMatcher matcher(2, 2);
  matcher.AddEdge(0, 0);
  matcher.AddEdge(0, 1);
  matcher.AddEdge(1, 0);
  EXPECT_EQ(matcher.MaxMatching(), 2);
}

TEST(BipartiteMatcherTest, UnmatchedVerticesReportMinusOne) {
  BipartiteMatcher matcher(2, 1);
  matcher.AddEdge(0, 0);
  matcher.AddEdge(1, 0);
  EXPECT_EQ(matcher.MaxMatching(), 1);
  int matched = matcher.MatchOfRight(0);
  EXPECT_TRUE(matched == 0 || matched == 1);
  EXPECT_EQ(matcher.MatchOfLeft(1 - matched), -1);
}

TEST(BipartiteMatcherTest, EmptyGraph) {
  BipartiteMatcher matcher(3, 3);
  EXPECT_EQ(matcher.MaxMatching(), 0);
}

TEST(BipartiteMatcherTest, IdempotentAndResettableAfterAddEdge) {
  BipartiteMatcher matcher(2, 2);
  matcher.AddEdge(0, 0);
  EXPECT_EQ(matcher.MaxMatching(), 1);
  EXPECT_EQ(matcher.MaxMatching(), 1);
  matcher.AddEdge(1, 1);
  EXPECT_EQ(matcher.MaxMatching(), 2);
}

/// Property: matching size equals unit-capacity max flow.
class MatchingVsFlowTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchingVsFlowTest, MatchesUnitFlow) {
  Random rng(GetParam());
  for (int iter = 0; iter < 25; ++iter) {
    int nl = rng.UniformInt(1, 8), nr = rng.UniformInt(1, 8);
    BipartiteMatcher matcher(nl, nr);
    FlowNetwork net(nl + nr + 2);
    int source = nl + nr, sink = nl + nr + 1;
    for (int l = 0; l < nl; ++l) net.AddEdge(source, l, 1);
    for (int r = 0; r < nr; ++r) net.AddEdge(nl + r, sink, 1);
    for (int l = 0; l < nl; ++l) {
      for (int r = 0; r < nr; ++r) {
        if (rng.Bernoulli(0.4)) {
          matcher.AddEdge(l, r);
          net.AddEdge(l, nl + r, 1);
        }
      }
    }
    EXPECT_EQ(matcher.MaxMatching(),
              static_cast<int>(EdmondsKarpMaxFlow(&net, source, sink)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingVsFlowTest,
                         ::testing::Values(7, 14, 21, 28));

}  // namespace
}  // namespace coursenav::flow

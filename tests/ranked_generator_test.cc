#include "core/ranked_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/goal_generator.h"
#include "data/synthetic.h"
#include "requirements/expr_goal.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::ContainsPath;
using testing_util::Figure3Fixture;
using testing_util::GoalPaths;

std::shared_ptr<const Goal> AllThreeCoursesGoal(const Figure3Fixture& fix) {
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  EXPECT_TRUE(goal.ok());
  return *goal;
}

TEST(RankedGeneratorTest, Top1ShortestMatchesPaperExample) {
  // §4.3.2's walkthrough: the single shortest path to all three courses
  // takes {11A, 29A} then {21A} — length 2.
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = AllThreeCoursesGoal(fix);
  TimeRanking ranking;
  auto result = GenerateRankedPaths(fix.catalog, fix.schedule,
                                    fix.FreshStudent(), fix.spring13, *goal,
                                    ranking, /*k=*/1, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.ok());
  ASSERT_EQ(result->paths.size(), 1u);
  EXPECT_EQ(result->paths[0].Length(), 2);
  EXPECT_DOUBLE_EQ(result->paths[0].cost(), 2.0);
  // Best-first stops early: far fewer nodes than the full goal graph.
  EXPECT_LT(result->stats.nodes_expanded, 20);
}

TEST(RankedGeneratorTest, CostsNonDecreasing) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = AllThreeCoursesGoal(fix);
  TimeRanking ranking;
  auto result = GenerateRankedPaths(fix.catalog, fix.schedule,
                                    fix.FreshStudent(), fix.spring13, *goal,
                                    ranking, /*k=*/10, options);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->paths.size(); ++i) {
    EXPECT_LE(result->paths[i - 1].cost(), result->paths[i].cost());
  }
}

TEST(RankedGeneratorTest, KLargerThanGoalSpaceReturnsAll) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = AllThreeCoursesGoal(fix);
  TimeRanking ranking;
  auto ranked = GenerateRankedPaths(fix.catalog, fix.schedule,
                                    fix.FreshStudent(), fix.spring13, *goal,
                                    ranking, /*k=*/1000, options);
  auto all = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                     fix.FreshStudent(), fix.spring13, *goal,
                                     options);
  ASSERT_TRUE(ranked.ok());
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(ranked->termination.ok());
  EXPECT_EQ(static_cast<int64_t>(ranked->paths.size()),
            all->stats.goal_paths);
}

TEST(RankedGeneratorTest, InputValidation) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = AllThreeCoursesGoal(fix);
  TimeRanking ranking;
  EXPECT_TRUE(GenerateRankedPaths(fix.catalog, fix.schedule,
                                  fix.FreshStudent(), fix.spring13, *goal,
                                  ranking, /*k=*/0, options)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GenerateRankedPaths(fix.catalog, fix.schedule,
                                  fix.FreshStudent(), fix.fall11, *goal,
                                  ranking, /*k=*/1, options)
                  .status()
                  .IsInvalidArgument());
}

TEST(RankedGeneratorTest, WorkloadRankingPrefersLightCourses) {
  // Two disjoint ways to satisfy "A or B"; A is lighter.
  Catalog catalog;
  Course a;
  a.code = "A";
  a.workload_hours = 2;
  Course b;
  b.code = "B";
  b.workload_hours = 9;
  ASSERT_TRUE(catalog.AddCourse(std::move(a)).ok());
  ASSERT_TRUE(catalog.AddCourse(std::move(b)).ok());
  ASSERT_TRUE(catalog.Finalize().ok());
  OfferingSchedule schedule(catalog.size());
  Term f12(Season::kFall, 2012);
  ASSERT_TRUE(schedule.AddOffering(0, f12).ok());
  ASSERT_TRUE(schedule.AddOffering(1, f12).ok());

  auto goal = ExprGoal::Create(*expr::ParseBoolExpr("A or B"), catalog);
  ASSERT_TRUE(goal.ok());
  ExplorationOptions options;
  options.max_courses_per_term = 1;
  WorkloadRanking ranking(&catalog);
  EnrollmentStatus start{f12, catalog.NewCourseSet()};
  auto result = GenerateRankedPaths(catalog, schedule, start, f12 + 1, **goal,
                                    ranking, /*k=*/2, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->paths.size(), 2u);
  EXPECT_TRUE(result->paths[0].steps()[0].selection.test(0));  // light first
  EXPECT_DOUBLE_EQ(result->paths[0].cost(), 2.0);
  EXPECT_DOUBLE_EQ(result->paths[1].cost(), 9.0);
}

TEST(RankedGeneratorTest, ReliabilityRankingPrefersCertainOfferings) {
  // A is offered in the released schedule next term (prob 1.0); B only
  // beyond the release horizon with sparse history (prob < 1).
  Catalog catalog;
  for (const char* code : {"A", "B", "GOALX"}) {
    Course c;
    c.code = code;
    ASSERT_TRUE(catalog.AddCourse(std::move(c)).ok());
  }
  ASSERT_TRUE(catalog.Finalize().ok());
  Term f12(Season::kFall, 2012);
  OfferingSchedule schedule(catalog.size());
  ASSERT_TRUE(schedule.AddOffering(0, f12).ok());      // A now
  ASSERT_TRUE(schedule.AddOffering(1, f12 + 2).ok());  // B later
  ASSERT_TRUE(schedule.AddOffering(2, f12 + 3).ok());

  ScheduleHistory history;
  history.AddRecord(0, Term(Season::kFall, 2010));
  history.AddRecord(0, Term(Season::kFall, 2011));
  history.AddRecord(1, Term(Season::kFall, 2010));  // B ran 1 of 2 years
  OfferingProbabilityModel model(&schedule, /*release_end=*/f12, history,
                                 0.5);
  EXPECT_DOUBLE_EQ(model.Probability(0, f12), 1.0);
  EXPECT_DOUBLE_EQ(model.Probability(1, f12 + 2), 0.5);

  auto goal = ExprGoal::Create(*expr::ParseBoolExpr("A or B"), catalog);
  ASSERT_TRUE(goal.ok());
  ExplorationOptions options;
  options.max_courses_per_term = 1;
  // The B path waits two semesters for B's offering.
  options.allow_voluntary_skip = true;
  ReliabilityRanking ranking(&model);
  EnrollmentStatus start{f12, catalog.NewCourseSet()};
  auto result = GenerateRankedPaths(catalog, schedule, start, f12 + 4, **goal,
                                    ranking, /*k=*/2, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->paths.size(), 2u);
  // The A path has reliability 1.0 (cost 0), the B path 0.5.
  EXPECT_DOUBLE_EQ(ReliabilityRanking::CostToReliability(
                       result->paths[0].cost()),
                   1.0);
  EXPECT_NEAR(
      ReliabilityRanking::CostToReliability(result->paths[1].cost()), 0.5,
      1e-12);
}

/// Property: top-k under each ranking equals the brute-force k cheapest
/// goal paths, on random catalogs.
struct RankedCase {
  uint64_t seed;
  int ranking;  // 0 = time, 1 = workload
};

class RankedCorrectnessTest : public ::testing::TestWithParam<RankedCase> {};

TEST_P(RankedCorrectnessTest, MatchesBruteForceTopK) {
  const RankedCase& param = GetParam();
  data::SyntheticConfig config;
  config.num_courses = 10;
  config.num_intro_courses = 3;
  config.seed = param.seed;
  auto bundle = data::BuildSyntheticCatalog(config);
  ASSERT_TRUE(bundle.ok());

  std::vector<std::string> goal_codes;
  for (int i = 0; i < 4; ++i) {
    goal_codes.push_back(bundle->catalog.course(i).code);
  }
  auto goal = ExprGoal::CompleteAll(goal_codes, bundle->catalog);
  ASSERT_TRUE(goal.ok());

  ExplorationOptions options;
  options.max_courses_per_term = 2;
  EnrollmentStatus start{config.first_term, bundle->catalog.NewCourseSet()};
  Term end = config.first_term + 4;

  TimeRanking time_ranking;
  WorkloadRanking workload_ranking(&bundle->catalog);
  const RankingFunction& ranking =
      param.ranking == 0 ? static_cast<const RankingFunction&>(time_ranking)
                         : workload_ranking;

  // Brute force: enumerate every goal path, cost it, sort.
  auto all = GenerateGoalDrivenPaths(bundle->catalog, bundle->schedule, start,
                                     end, **goal, options);
  ASSERT_TRUE(all.ok());
  std::vector<LearningPath> brute = GoalPaths(all->graph);
  for (LearningPath& path : brute) {
    double cost = 0;
    for (const PathStep& step : path.steps()) {
      cost += ranking.EdgeCost(step.selection, step.term);
    }
    path.set_cost(cost);
  }
  std::sort(brute.begin(), brute.end(),
            [](const LearningPath& a, const LearningPath& b) {
              return a.cost() < b.cost();
            });

  const int k = std::min<int>(5, static_cast<int>(brute.size()));
  if (k == 0) {
    GTEST_SKIP() << "no goal paths for seed " << param.seed;
  }
  auto ranked = GenerateRankedPaths(bundle->catalog, bundle->schedule, start,
                                    end, **goal, ranking, k, options);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(static_cast<int>(ranked->paths.size()), k);
  for (int i = 0; i < k; ++i) {
    // Cost sequence must match the brute-force optimum (ties may reorder
    // the specific paths).
    EXPECT_NEAR(ranked->paths[static_cast<size_t>(i)].cost(),
                brute[static_cast<size_t>(i)].cost(), 1e-9)
        << "seed=" << param.seed << " i=" << i;
    EXPECT_TRUE(ContainsPath(brute, ranked->paths[static_cast<size_t>(i)]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RankedCorrectnessTest,
    ::testing::Values(RankedCase{11, 0}, RankedCase{12, 0}, RankedCase{13, 0},
                      RankedCase{11, 1}, RankedCase{12, 1}, RankedCase{13, 1},
                      RankedCase{14, 0}, RankedCase{14, 1}));

}  // namespace
}  // namespace coursenav

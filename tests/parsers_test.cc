#include "parsers/prereq_parser.h"

#include <gtest/gtest.h>

#include <set>

#include "parsers/catalog_loader.h"
#include "parsers/schedule_parser.h"
#include "parsers/transcript_parser.h"

namespace coursenav {
namespace {

std::set<std::string> VarsOf(const expr::Expr& e) {
  std::set<std::string> vars;
  e.CollectVars(&vars);
  return vars;
}

TEST(NormalizeCourseCodeTest, UppercasesAndGluesSpaces) {
  EXPECT_EQ(NormalizeCourseCode("cosi 11a"), "COSI11A");
  EXPECT_EQ(NormalizeCourseCode("COSI11A"), "COSI11A");
  EXPECT_EQ(NormalizeCourseCode(" cs \t101 b "), "CS101B");
}

TEST(PrereqParserTest, EmptyAndNoneAreTrue) {
  for (const char* text : {"", "  ", "none", "None", "N/A",
                           "Prerequisite: none."}) {
    auto e = ParsePrerequisiteText(text);
    ASSERT_TRUE(e.ok()) << text;
    EXPECT_EQ(e->kind(), expr::Expr::Kind::kConst) << text;
    EXPECT_TRUE(e->const_value()) << text;
  }
}

TEST(PrereqParserTest, LabelStripped) {
  auto e = ParsePrerequisiteText("Prerequisite: COSI 11a");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(VarsOf(*e), (std::set<std::string>{"COSI11A"}));
}

TEST(PrereqParserTest, SpacedCodesMerged) {
  auto e = ParsePrerequisiteText("COSI 11a and COSI 29a");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(VarsOf(*e), (std::set<std::string>{"COSI11A", "COSI29A"}));
  EXPECT_EQ(e->kind(), expr::Expr::Kind::kAnd);
}

TEST(PrereqParserTest, CommaMeansAnd) {
  auto e = ParsePrerequisiteText("COSI 11a, COSI 29a");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->kind(), expr::Expr::Kind::kAnd);
  EXPECT_EQ(VarsOf(*e), (std::set<std::string>{"COSI11A", "COSI29A"}));
}

TEST(PrereqParserTest, CommaBeforeOperatorIgnored) {
  auto e = ParsePrerequisiteText("COSI 11a, or COSI 12b");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->kind(), expr::Expr::Kind::kOr);
}

TEST(PrereqParserTest, InstructorPermissionStripped) {
  auto e = ParsePrerequisiteText(
      "Prerequisite: COSI 21a or permission of the instructor");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(VarsOf(*e), (std::set<std::string>{"COSI21A"}));
  auto f = ParsePrerequisiteText("COSI 21a or consent of instructor");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(VarsOf(*f), (std::set<std::string>{"COSI21A"}));
}

TEST(PrereqParserTest, SentenceTerminatorCutsTrailingProse) {
  auto e = ParsePrerequisiteText(
      "Prerequisites: COSI 11a and COSI 29a. May not be repeated for "
      "credit.");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(VarsOf(*e), (std::set<std::string>{"COSI11A", "COSI29A"}));
}

TEST(PrereqParserTest, ParenthesizedDisjunction) {
  auto e = ParsePrerequisiteText("COSI 11a and (COSI 21a or COSI 22b)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(VarsOf(*e),
            (std::set<std::string>{"COSI11A", "COSI21A", "COSI22B"}));
}

TEST(PrereqParserTest, MalformedTextFails) {
  EXPECT_TRUE(ParsePrerequisiteText("COSI 11a @@ COSI 29a")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParsePrerequisiteText("and and").status().IsParseError());
}

// ------------------------------------------------------ schedule parser

class ScheduleParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* code : {"COSI11A", "COSI21A"}) {
      Course c;
      c.code = code;
      ASSERT_TRUE(catalog_.AddCourse(std::move(c)).ok());
    }
    ASSERT_TRUE(catalog_.Finalize().ok());
  }
  Catalog catalog_;
};

TEST_F(ScheduleParserTest, ParsesCsvWithCommentsAndBlanks) {
  const char* text =
      "# class schedule\n"
      "\n"
      "COSI11A, Fall 2011; Fall 2012\n"
      "cosi 21a, Spring 2012\n";
  auto schedule = ParseScheduleCsv(text, catalog_);
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(schedule->IsOffered(0, Term(Season::kFall, 2011)));
  EXPECT_TRUE(schedule->IsOffered(0, Term(Season::kFall, 2012)));
  EXPECT_TRUE(schedule->IsOffered(1, Term(Season::kSpring, 2012)));
  EXPECT_FALSE(schedule->IsOffered(1, Term(Season::kFall, 2011)));
}

TEST_F(ScheduleParserTest, ErrorsCarryLineNumbers) {
  auto missing_comma = ParseScheduleCsv("COSI11A Fall 2011", catalog_);
  EXPECT_TRUE(missing_comma.status().IsParseError());
  auto unknown = ParseScheduleCsv("NOPE1, Fall 2011", catalog_);
  EXPECT_TRUE(unknown.status().IsParseError());
  EXPECT_NE(unknown.status().message().find("line 1"), std::string::npos);
  auto bad_term = ParseScheduleCsv("\nCOSI11A, Winter 2011", catalog_);
  EXPECT_TRUE(bad_term.status().IsParseError());
  EXPECT_NE(bad_term.status().message().find("line 2"), std::string::npos);
}

// ------------------------------------------------------- catalog loader

TEST(CatalogLoaderTest, LoadsCoursesAndSchedule) {
  const char* json = R"({
    "courses": [
      {"code": "COSI11A", "title": "Intro", "workload": 8,
       "offered": ["Fall 2011", "Fall 2012"]},
      {"code": "cosi 21a", "title": "Data Structures", "workload": 10,
       "prerequisites": "COSI 11a", "offered": ["Spring 2012"]}
    ]
  })";
  auto bundle = LoadCatalogFromJson(json);
  ASSERT_TRUE(bundle.ok());
  EXPECT_TRUE(bundle->catalog.finalized());
  EXPECT_EQ(bundle->catalog.size(), 2);
  auto id = bundle->catalog.FindByCode("COSI21A");
  ASSERT_TRUE(id.ok());  // code normalized
  EXPECT_EQ(bundle->catalog.course(*id).title, "Data Structures");
  EXPECT_TRUE(bundle->schedule.IsOffered(*id, Term(Season::kSpring, 2012)));
  // Prerequisite compiled against the catalog.
  DynamicBitset with_intro = bundle->catalog.NewCourseSet();
  with_intro.set(*bundle->catalog.FindByCode("COSI11A"));
  EXPECT_TRUE(bundle->catalog.compiled_prereq(*id).Eval(with_intro));
}

TEST(CatalogLoaderTest, DefaultsApplied) {
  auto bundle = LoadCatalogFromJson(R"({"courses": [{"code": "X1"}]})");
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->catalog.course(0).workload_hours, 0.0);
  EXPECT_TRUE(bundle->schedule.OfferingTerms(0).empty());
}

TEST(CatalogLoaderTest, RejectsBadDocuments) {
  EXPECT_TRUE(LoadCatalogFromJson("{}").status().IsNotFound());
  EXPECT_TRUE(LoadCatalogFromJson(R"({"courses": 3})")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(LoadCatalogFromJson(R"({"courses": [{"title": "no code"}]})")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(LoadCatalogFromJson(
                  R"({"courses": [{"code": "A", "offered": ["Winter 9"]}]})")
                  .status()
                  .IsParseError());
  // Prereq referencing an unknown course fails at finalization.
  EXPECT_FALSE(LoadCatalogFromJson(
                   R"({"courses": [{"code": "A", "prerequisites": "B1"}]})")
                   .ok());
}

TEST(CatalogLoaderTest, JsonRoundTrip) {
  const char* json = R"({
    "courses": [
      {"code": "A1", "title": "t", "workload": 3.5,
       "prerequisites": "true", "offered": ["Fall 2012"]},
      {"code": "B1", "title": "u", "workload": 4,
       "prerequisites": "A1", "offered": []}
    ]
  })";
  auto bundle = LoadCatalogFromJson(json);
  ASSERT_TRUE(bundle.ok());
  std::string dumped =
      CatalogToJson(bundle->catalog, bundle->schedule).Dump(2);
  auto reloaded = LoadCatalogFromJson(dumped);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->catalog.size(), 2);
  EXPECT_EQ(reloaded->catalog.course(0).workload_hours, 3.5);
  EXPECT_TRUE(
      reloaded->schedule.IsOffered(0, Term(Season::kFall, 2012)));
}

// ---------------------------------------------------- transcript parser

class TranscriptParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* code : {"A1", "B1", "C1"}) {
      Course c;
      c.code = code;
      ASSERT_TRUE(catalog_.AddCourse(std::move(c)).ok());
    }
    ASSERT_TRUE(catalog_.Finalize().ok());
  }
  Catalog catalog_;
};

TEST_F(TranscriptParserTest, GroupsAndSortsRecords) {
  const char* csv =
      "# student, term, course\n"
      "s2, Fall 2012, B1\n"
      "s1, Spring 2013, B1\n"
      "s1, Fall 2012, A1\n"
      "s1, Fall 2012, C1\n";
  auto transcripts = ParseTranscriptsCsv(csv, catalog_);
  ASSERT_TRUE(transcripts.ok());
  ASSERT_EQ(transcripts->size(), 2u);
  const Transcript& s1 = (*transcripts)[0];
  EXPECT_EQ(s1.student_id, "s1");
  ASSERT_EQ(s1.records.size(), 2u);
  EXPECT_EQ(s1.records[0].first, Term(Season::kFall, 2012));
  EXPECT_EQ(s1.records[0].second.size(), 2u);
  EXPECT_EQ(s1.records[1].first, Term(Season::kSpring, 2013));
}

TEST_F(TranscriptParserTest, RejectsBadLines) {
  EXPECT_TRUE(ParseTranscriptsCsv("s1, Fall 2012", catalog_)
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseTranscriptsCsv("s1, Nope 2012, A1", catalog_)
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseTranscriptsCsv("s1, Fall 2012, ZZ9", catalog_)
                  .status()
                  .IsParseError());
}

TEST_F(TranscriptParserTest, TranscriptToPathFillsSkips) {
  const char* csv =
      "s1, Fall 2012, A1\n"
      "s1, Fall 2013, B1\n";
  auto transcripts = ParseTranscriptsCsv(csv, catalog_);
  ASSERT_TRUE(transcripts.ok());
  Term start(Season::kFall, 2012);
  auto path = TranscriptToPath((*transcripts)[0], catalog_, start,
                               Term(Season::kSpring, 2014));
  ASSERT_TRUE(path.ok());
  ASSERT_EQ(path->steps().size(), 3u);
  EXPECT_EQ(path->steps()[0].selection.count(), 1);
  EXPECT_TRUE(path->steps()[1].selection.empty());  // Spring 2013 skipped
  EXPECT_EQ(path->steps()[2].selection.count(), 1);
}

TEST_F(TranscriptParserTest, TranscriptOutsideWindowFails) {
  const char* csv = "s1, Fall 2012, A1\n";
  auto transcripts = ParseTranscriptsCsv(csv, catalog_);
  ASSERT_TRUE(transcripts.ok());
  EXPECT_TRUE(TranscriptToPath((*transcripts)[0], catalog_,
                               Term(Season::kSpring, 2013),
                               Term(Season::kSpring, 2014))
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace coursenav

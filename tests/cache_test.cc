// The process-wide epoch-keyed request cache's contracts (ctest label
// `cache`):
//
//  - Epoch identity: tokens are content-keyed (two identical datasets
//    share one, different datasets never do), rotate on Invalidate(), and
//    rotate per fault-injection scope and per fired churn event.
//  - Byte-identical reuse: a warm Execute returns exactly the cold run's
//    response — graphs, stats, even runtime_seconds — at any thread
//    count, because the result key is thread- and wall-clock-free.
//  - Only complete runs are stored: truncated runs reuse the plan tier
//    but never populate the result tier.
//  - In-memory-only requests (no declarative goal spec) bypass cleanly.
//  - Tiers are LRU within their configured bounds, with evictions
//    tallied.
//  - Invalidate() makes every derived entry unreachable.
//  - The goal-path-count tier is shared across sessions: one session's
//    miss is the next session's hit, surfaced through the per-session
//    cache_hits/cache_misses metrics.

#include "cache/request_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "cache/epoch.h"
#include "catalog/term.h"
#include "data/brandeis_cs.h"
#include "expr/parser.h"
#include "obs/metrics.h"
#include "plan/executor.h"
#include "plan/request.h"
#include "requirements/expr_goal.h"
#include "service/session.h"
#include "tests/test_util.h"
#include "util/fault_injection.h"

namespace coursenav {
namespace {

using cache::CacheOutcome;
using cache::EpochRegistry;
using cache::RequestCache;
using testing_util::Figure3Fixture;
using testing_util::GraphDifference;
using testing_util::StatsDifference;

std::shared_ptr<const Goal> MakeExprGoal(const std::string& spec,
                                         const Catalog& catalog) {
  auto parsed = expr::ParseBoolExpr(spec);
  if (!parsed.ok()) std::abort();
  auto goal = ExprGoal::Create(*parsed, catalog);
  if (!goal.ok()) std::abort();
  return *goal;
}

/// A serializable goal-driven request over the Figure 3 fixture — the
/// cacheable shape (declarative spec alongside the resolved goal).
ExplorationRequest Figure3Request(const Figure3Fixture& fixture,
                                  int num_threads = 1) {
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  request.type = TaskType::kGoalDriven;
  request.goal_spec = "11A and 29A and 21A";
  request.goal = MakeExprGoal(request.goal_spec, fixture.catalog);
  request.options.num_threads = num_threads;
  return request;
}

int64_t CounterValue(const obs::MetricRegistry& registry,
                     std::string_view name) {
  for (const obs::MetricSnapshot& snapshot : registry.Snapshot()) {
    if (snapshot.name == name && snapshot.kind == obs::MetricKind::kCounter) {
      return snapshot.value;
    }
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Epoch identity.
// ---------------------------------------------------------------------------

TEST(EpochTest, TokenIsContentKeyedNotPointerKeyed) {
  Figure3Fixture a;
  Figure3Fixture b;  // Same content, distinct objects at distinct addresses.
  cache::CatalogEpoch epoch_a =
      EpochRegistry::Global().Current(a.catalog, a.schedule);
  cache::CatalogEpoch epoch_b =
      EpochRegistry::Global().Current(b.catalog, b.schedule);
  EXPECT_EQ(epoch_a.token, epoch_b.token);
  EXPECT_EQ(epoch_a.content_hash, epoch_b.content_hash);

  data::BrandeisDataset brandeis = data::BuildBrandeisDataset();
  cache::CatalogEpoch other =
      EpochRegistry::Global().Current(brandeis.catalog, brandeis.schedule);
  EXPECT_NE(epoch_a.token, other.token);
  EXPECT_NE(epoch_a.content_hash, other.content_hash);
}

TEST(EpochTest, InvalidateRotatesOnlyTheTargetDataset) {
  Figure3Fixture fixture;
  data::BrandeisDataset brandeis = data::BuildBrandeisDataset();
  EpochRegistry& registry = EpochRegistry::Global();

  uint64_t before = registry.Current(fixture.catalog, fixture.schedule).token;
  uint64_t other_before =
      registry.Current(brandeis.catalog, brandeis.schedule).token;
  int64_t invalidations_before = registry.invalidations();

  registry.Invalidate(fixture.catalog, fixture.schedule);

  EXPECT_NE(registry.Current(fixture.catalog, fixture.schedule).token, before);
  EXPECT_EQ(registry.Current(brandeis.catalog, brandeis.schedule).token,
            other_before);
  EXPECT_EQ(registry.invalidations(), invalidations_before + 1);
}

TEST(EpochTest, InjectionScopesAndChurnEventsRotateTheToken) {
  Figure3Fixture fixture;
  EpochRegistry& registry = EpochRegistry::Global();
  uint64_t clean = registry.Current(fixture.catalog, fixture.schedule).token;

  FaultConfig config;
  config.seed = 7;
  config.site_probability[std::string(kFaultSiteScheduleChurn)] = 1.0;

  uint64_t first_scope = 0;
  {
    ScopedFaultInjection chaos(config);
    first_scope = registry.Current(fixture.catalog, fixture.schedule).token;
    EXPECT_NE(first_scope, clean);
    // Every fired churn fault rotates the token again.
    (void)fixture.schedule.OfferedIn(fixture.fall11);
    EXPECT_NE(registry.Current(fixture.catalog, fixture.schedule).token,
              first_scope);
  }
  {
    ScopedFaultInjection chaos(config);
    // A fresh scope — even with the same seed — is a fresh world: no two
    // activations ever share an epoch.
    EXPECT_NE(registry.Current(fixture.catalog, fixture.schedule).token,
              first_scope);
    EXPECT_NE(registry.Current(fixture.catalog, fixture.schedule).token,
              clean);
  }
  EXPECT_EQ(registry.Current(fixture.catalog, fixture.schedule).token, clean);
}

// ---------------------------------------------------------------------------
// Result reuse.
// ---------------------------------------------------------------------------

TEST(RequestCacheTest, MissThenByteIdenticalHitAcrossThreadCounts) {
  Figure3Fixture fixture;
  RequestCache cache;

  CacheOutcome outcome = CacheOutcome::kDisabled;
  auto cold = cache.Execute(fixture.catalog, fixture.schedule,
                            Figure3Request(fixture), &outcome);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  ASSERT_TRUE(cold->generation.has_value());

  auto warm = cache.Execute(fixture.catalog, fixture.schedule,
                            Figure3Request(fixture), &outcome);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(outcome, CacheOutcome::kHit);
  ASSERT_TRUE(warm->generation.has_value());
  EXPECT_EQ(GraphDifference(cold->generation->graph, warm->generation->graph),
            "");
  EXPECT_EQ(StatsDifference(cold->generation->stats, warm->generation->stats),
            "");
  // A hit clones the stored canonical response verbatim — even wall time.
  EXPECT_EQ(cold->generation->stats.runtime_seconds,
            warm->generation->stats.runtime_seconds);

  // The result key is thread-free: a 4-thread ask is served from the same
  // canonical entry, byte-identically.
  auto threaded = cache.Execute(fixture.catalog, fixture.schedule,
                                Figure3Request(fixture, /*num_threads=*/4),
                                &outcome);
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
  EXPECT_EQ(outcome, CacheOutcome::kHit);
  EXPECT_EQ(
      GraphDifference(cold->generation->graph, threaded->generation->graph),
      "");

  cache::CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.result_misses, 1);
  EXPECT_EQ(stats.result_hits, 2);
  EXPECT_EQ(stats.result_entries, 1u);
}

TEST(RequestCacheTest, TruncatedRunsReusePlanButNeverResults) {
  Figure3Fixture fixture;
  RequestCache cache;

  ExplorationRequest request = Figure3Request(fixture);
  request.options.limits.max_nodes = 2;  // Guarantees a truncated run.

  CacheOutcome outcome = CacheOutcome::kDisabled;
  auto first = cache.Execute(fixture.catalog, fixture.schedule, request,
                             &outcome);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  ASSERT_TRUE(first->generation.has_value());
  ASSERT_FALSE(first->generation->termination.ok());

  auto second = cache.Execute(fixture.catalog, fixture.schedule, request,
                              &outcome);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  // Still a miss — incomplete answers are never served from cache — but
  // the lowered plan is reused.
  EXPECT_EQ(outcome, CacheOutcome::kMiss);

  cache::CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.result_entries, 0u);
  EXPECT_GE(stats.plan_hits, 1);
}

TEST(RequestCacheTest, InMemoryOnlyGoalBypasses) {
  Figure3Fixture fixture;
  RequestCache cache;

  ExplorationRequest request = Figure3Request(fixture);
  request.goal_spec.clear();  // Resolved goal without a declarative source.

  CacheOutcome outcome = CacheOutcome::kDisabled;
  auto response = cache.Execute(fixture.catalog, fixture.schedule, request,
                                &outcome);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(outcome, CacheOutcome::kBypass);

  cache::CacheStats stats = cache.Stats();
  EXPECT_GE(stats.bypasses, 1);
  EXPECT_EQ(stats.result_entries, 0u);
  EXPECT_EQ(stats.plan_entries, 0u);
}

TEST(RequestCacheTest, TiersAreLruBounded) {
  Figure3Fixture fixture;
  cache::CacheConfig config;
  config.plan_capacity = 2;
  config.result_capacity = 2;
  RequestCache cache(config);

  const Term deadlines[] = {Term(Season::kSpring, 2012),
                            Term(Season::kFall, 2012),
                            Term(Season::kSpring, 2013)};
  for (const Term& deadline : deadlines) {
    ExplorationRequest request = Figure3Request(fixture);
    request.end_term = deadline;
    CacheOutcome outcome = CacheOutcome::kDisabled;
    auto response = cache.Execute(fixture.catalog, fixture.schedule, request,
                                  &outcome);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(outcome, CacheOutcome::kMiss);
  }

  cache::CacheStats stats = cache.Stats();
  EXPECT_LE(stats.result_entries, 2u);
  EXPECT_LE(stats.plan_entries, 2u);
  EXPECT_GE(stats.evictions, 1);

  // The least-recently-used entry (the first deadline) was evicted.
  ExplorationRequest request = Figure3Request(fixture);
  request.end_term = deadlines[0];
  CacheOutcome outcome = CacheOutcome::kDisabled;
  auto response = cache.Execute(fixture.catalog, fixture.schedule, request,
                                &outcome);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
}

TEST(RequestCacheTest, InvalidateForcesRecompute) {
  Figure3Fixture fixture;
  RequestCache cache;

  CacheOutcome outcome = CacheOutcome::kDisabled;
  ASSERT_TRUE(cache.Execute(fixture.catalog, fixture.schedule,
                            Figure3Request(fixture), &outcome)
                  .ok());
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  ASSERT_TRUE(cache.Execute(fixture.catalog, fixture.schedule,
                            Figure3Request(fixture), &outcome)
                  .ok());
  EXPECT_EQ(outcome, CacheOutcome::kHit);

  cache.Invalidate(fixture.catalog, fixture.schedule);

  auto recomputed = cache.Execute(fixture.catalog, fixture.schedule,
                                  Figure3Request(fixture), &outcome);
  ASSERT_TRUE(recomputed.ok()) << recomputed.status().ToString();
  EXPECT_EQ(outcome, CacheOutcome::kMiss);
  EXPECT_GE(cache.Stats().epoch_invalidations, 1);
}

// ---------------------------------------------------------------------------
// The shared goal-path-count tier.
// ---------------------------------------------------------------------------

TEST(CountCacheTest, CountsAreSharedAcrossSessions) {
  Figure3Fixture fixture;
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fixture.catalog);
  ASSERT_TRUE(goal.ok());

  ExplorationSession first(&fixture.catalog, &fixture.schedule, *goal,
                           fixture.FreshStudent(), fixture.spring13);
  ExplorationSession second(&fixture.catalog, &fixture.schedule, *goal,
                            fixture.FreshStudent(), fixture.spring13);

  // The goal object is freshly allocated, so its pointer-keyed entries
  // cannot pre-exist in the process-wide cache: the first session's count
  // is a miss, and the second session's identical ask is a hit.
  auto cold = first.RemainingGoalPaths();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  auto warm = second.RemainingGoalPaths();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(*cold, *warm);

  EXPECT_EQ(CounterValue(first.metrics(), obs::kMetricSessionCacheMisses), 1);
  EXPECT_EQ(CounterValue(first.metrics(), obs::kMetricSessionCacheHits), 0);
  EXPECT_EQ(CounterValue(second.metrics(), obs::kMetricSessionCacheHits), 1);
  EXPECT_EQ(CounterValue(second.metrics(), obs::kMetricSessionCacheMisses), 0);
}

}  // namespace
}  // namespace coursenav

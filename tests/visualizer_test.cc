#include "service/visualizer.h"

#include <gtest/gtest.h>

#include "core/deadline_generator.h"
#include "core/goal_generator.h"
#include "requirements/expr_goal.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::Figure3Fixture;
using testing_util::GoalPaths;

TEST(VisualizerTest, RenderPathsShowsTermsAndCourses) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  auto result = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                        fix.FreshStudent(),
                                        Term(Season::kFall, 2012), **goal,
                                        options);
  ASSERT_TRUE(result.ok());
  std::string rendered = RenderPaths(GoalPaths(result->graph), fix.catalog);
  EXPECT_NE(rendered.find("Path 1"), std::string::npos);
  EXPECT_NE(rendered.find("Fall 2011"), std::string::npos);
  EXPECT_NE(rendered.find("11A, 29A"), std::string::npos);
  EXPECT_NE(rendered.find("21A"), std::string::npos);
}

TEST(VisualizerTest, RenderPathsLimitsAndCounts) {
  Figure3Fixture fix;
  LearningPath path(fix.fall11, fix.catalog.NewCourseSet());
  std::vector<LearningPath> many(7, path);
  std::string rendered = RenderPaths(many, fix.catalog, /*limit=*/3);
  EXPECT_NE(rendered.find("Path 3"), std::string::npos);
  EXPECT_EQ(rendered.find("Path 4"), std::string::npos);
  EXPECT_NE(rendered.find("and 4 more paths"), std::string::npos);
}

TEST(VisualizerTest, RenderPathsShowsSkips) {
  Figure3Fixture fix;
  LearningPath path(fix.fall11, fix.catalog.NewCourseSet());
  path.AppendStep(fix.fall11, fix.catalog.NewCourseSet());
  std::string rendered = RenderPaths({path}, fix.catalog);
  EXPECT_NE(rendered.find("(skip)"), std::string::npos);
}

TEST(VisualizerTest, GraphSummaryReportsCountsAndPruning) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  auto result = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                        fix.FreshStudent(),
                                        Term(Season::kFall, 2012), **goal,
                                        options);
  ASSERT_TRUE(result.ok());
  std::string summary = RenderGraphSummary(result->graph, result->stats);
  EXPECT_NE(summary.find("Learning graph:"), std::string::npos);
  EXPECT_NE(summary.find("Pruned subtrees:"), std::string::npos);
  EXPECT_NE(summary.find("Runtime:"), std::string::npos);
}

TEST(VisualizerTest, RenderStatusShowsCompletedAndOptions) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto result = GenerateDeadlineDrivenPaths(
      fix.catalog, fix.schedule, fix.FreshStudent(), fix.spring13, options);
  ASSERT_TRUE(result.ok());
  std::string rendered =
      RenderStatus(result->graph, result->graph.root(), fix.catalog);
  EXPECT_NE(rendered.find("Fall 2011"), std::string::npos);
  EXPECT_NE(rendered.find("completed {}"), std::string::npos);
  EXPECT_NE(rendered.find("options {11A, 29A}"), std::string::npos);
}

TEST(StatsTest, ToStringIncludesEverything) {
  ExplorationStats stats;
  stats.nodes_created = 10;
  stats.pruned_time = 4;
  stats.pruned_availability = 2;
  std::string text = stats.ToString();
  EXPECT_NE(text.find("nodes=10"), std::string::npos);
  EXPECT_NE(text.find("pruned_time=4"), std::string::npos);
  EXPECT_EQ(stats.TotalPruned(), 6);
}

}  // namespace
}  // namespace coursenav

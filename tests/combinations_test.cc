#include "core/combinations.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace coursenav {
namespace {

std::vector<std::vector<int>> Collect(const DynamicBitset& options,
                                      int min_size, int max_size) {
  std::vector<std::vector<int>> out;
  ForEachSelection(options, min_size, max_size,
                   [&](const DynamicBitset& sel) {
                     out.push_back(sel.ToIndices());
                     return true;
                   });
  return out;
}

TEST(ForEachSelectionTest, EnumeratesAllSizes) {
  DynamicBitset options = DynamicBitset::FromIndices(10, {1, 4, 7});
  auto subsets = Collect(options, 1, 3);
  // C(3,1) + C(3,2) + C(3,3) = 7.
  ASSERT_EQ(subsets.size(), 7u);
  std::set<std::vector<int>> unique(subsets.begin(), subsets.end());
  EXPECT_EQ(unique.size(), 7u);
  EXPECT_TRUE(unique.count({1}));
  EXPECT_TRUE(unique.count({1, 4, 7}));
}

TEST(ForEachSelectionTest, RespectsMaxSize) {
  DynamicBitset options = DynamicBitset::FromIndices(10, {0, 1, 2, 3});
  auto subsets = Collect(options, 1, 2);
  EXPECT_EQ(subsets.size(), 4u + 6u);
  for (const auto& s : subsets) EXPECT_LE(s.size(), 2u);
}

TEST(ForEachSelectionTest, RespectsMinSize) {
  DynamicBitset options = DynamicBitset::FromIndices(10, {0, 1, 2, 3});
  auto subsets = Collect(options, 3, 4);
  EXPECT_EQ(subsets.size(), 4u + 1u);
  for (const auto& s : subsets) EXPECT_GE(s.size(), 3u);
}

TEST(ForEachSelectionTest, MinBelowOneClampedToOne) {
  DynamicBitset options = DynamicBitset::FromIndices(5, {0, 1});
  auto subsets = Collect(options, 0, 2);
  EXPECT_EQ(subsets.size(), 3u);  // no empty set
}

TEST(ForEachSelectionTest, EmptyOptionsYieldNothing) {
  DynamicBitset options(5);
  EXPECT_TRUE(Collect(options, 1, 3).empty());
}

TEST(ForEachSelectionTest, MinAboveCountYieldsNothing) {
  DynamicBitset options = DynamicBitset::FromIndices(5, {0, 1});
  EXPECT_TRUE(Collect(options, 3, 5).empty());
}

TEST(ForEachSelectionTest, DeterministicOrder) {
  DynamicBitset options = DynamicBitset::FromIndices(6, {0, 2, 5});
  auto subsets = Collect(options, 1, 2);
  std::vector<std::vector<int>> expected = {{0}, {2}, {5}, {0, 2},
                                            {0, 5}, {2, 5}};
  EXPECT_EQ(subsets, expected);
}

TEST(ForEachSelectionTest, EarlyStopReturnsFalse) {
  DynamicBitset options = DynamicBitset::FromIndices(6, {0, 1, 2});
  int seen = 0;
  bool completed = ForEachSelection(options, 1, 3,
                                    [&](const DynamicBitset&) {
                                      return ++seen < 3;
                                    });
  EXPECT_FALSE(completed);
  EXPECT_EQ(seen, 3);
}

TEST(ForEachSelectionTest, CountMatchesEnumeration) {
  for (int n : {0, 1, 3, 6}) {
    std::vector<int> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i);
    DynamicBitset options = DynamicBitset::FromIndices(8, ids);
    for (int m = 1; m <= 4; ++m) {
      EXPECT_EQ(static_cast<uint64_t>(Collect(options, 1, m).size()),
                CountSelections(n, 1, m))
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(CountSelectionsTest, KnownValues) {
  EXPECT_EQ(CountSelections(4, 1, 2), 10u);   // 4 + 6
  EXPECT_EQ(CountSelections(38, 1, 3), 38u + 703u + 8436u);
  EXPECT_EQ(CountSelections(5, 1, 10), 31u);  // all non-empty subsets
  EXPECT_EQ(CountSelections(0, 1, 3), 0u);
  EXPECT_EQ(CountSelections(5, 2, 2), 10u);
}

TEST(CountSelectionsTest, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(CountSelections(300, 1, 300), UINT64_MAX);
}

TEST(SaturatingMathTest, AddAndMul) {
  EXPECT_EQ(SaturatingAdd(1, 2), 3u);
  EXPECT_EQ(SaturatingAdd(UINT64_MAX, 1), UINT64_MAX);
  EXPECT_EQ(SaturatingAdd(UINT64_MAX - 1, 1), UINT64_MAX);
  EXPECT_EQ(SaturatingMul(3, 4), 12u);
  EXPECT_EQ(SaturatingMul(UINT64_MAX, 2), UINT64_MAX);
  EXPECT_EQ(SaturatingMul(UINT64_MAX, 0), 0u);
}

}  // namespace
}  // namespace coursenav

#include "catalog/schedule.h"

#include <gtest/gtest.h>

#include "catalog/schedule_history.h"

namespace coursenav {
namespace {

constexpr int kCourses = 5;

TEST(OfferingScheduleTest, AddAndQueryOfferings) {
  OfferingSchedule schedule(kCourses);
  Term f11(Season::kFall, 2011);
  ASSERT_TRUE(schedule.AddOffering(0, f11).ok());
  ASSERT_TRUE(schedule.AddOffering(2, f11).ok());
  EXPECT_TRUE(schedule.IsOffered(0, f11));
  EXPECT_FALSE(schedule.IsOffered(1, f11));
  EXPECT_FALSE(schedule.IsOffered(0, f11.Next()));
  EXPECT_EQ(schedule.OfferedIn(f11).ToIndices(), (std::vector<int>{0, 2}));
  EXPECT_TRUE(schedule.OfferedIn(f11.Next()).empty());
}

TEST(OfferingScheduleTest, RejectsOutOfRangeCourse) {
  OfferingSchedule schedule(kCourses);
  Term f11(Season::kFall, 2011);
  EXPECT_TRUE(schedule.AddOffering(-1, f11).IsInvalidArgument());
  EXPECT_TRUE(schedule.AddOffering(kCourses, f11).IsInvalidArgument());
}

TEST(OfferingScheduleTest, RecurringFallPattern) {
  OfferingSchedule schedule(kCourses);
  Term first(Season::kFall, 2011), last(Season::kFall, 2013);
  ASSERT_TRUE(schedule.AddRecurring(1, Season::kFall, first, last).ok());
  EXPECT_TRUE(schedule.IsOffered(1, Term(Season::kFall, 2011)));
  EXPECT_TRUE(schedule.IsOffered(1, Term(Season::kFall, 2012)));
  EXPECT_TRUE(schedule.IsOffered(1, Term(Season::kFall, 2013)));
  EXPECT_FALSE(schedule.IsOffered(1, Term(Season::kSpring, 2012)));
  EXPECT_TRUE(schedule
                  .AddRecurring(1, Season::kFall, last, first)
                  .IsInvalidArgument());
}

TEST(OfferingScheduleTest, OfferedInRangeUnions) {
  OfferingSchedule schedule(kCourses);
  Term f11(Season::kFall, 2011);
  ASSERT_TRUE(schedule.AddOffering(0, f11).ok());
  ASSERT_TRUE(schedule.AddOffering(1, f11 + 1).ok());
  ASSERT_TRUE(schedule.AddOffering(2, f11 + 2).ok());
  EXPECT_EQ(schedule.OfferedInRange(f11, f11 + 1).ToIndices(),
            (std::vector<int>{0, 1}));
  EXPECT_EQ(schedule.OfferedInRange(f11 + 1, f11 + 5).ToIndices(),
            (std::vector<int>{1, 2}));
  // Reversed range is empty.
  EXPECT_TRUE(schedule.OfferedInRange(f11 + 2, f11).empty());
}

TEST(OfferingScheduleTest, OfferingTermsAndBounds) {
  OfferingSchedule schedule(kCourses);
  Term f11(Season::kFall, 2011);
  ASSERT_TRUE(schedule.AddOffering(3, f11 + 4).ok());
  ASSERT_TRUE(schedule.AddOffering(3, f11).ok());
  EXPECT_EQ(schedule.OfferingTerms(3),
            (std::vector<Term>{f11, f11 + 4}));
  EXPECT_EQ(schedule.first_term(), f11);
  EXPECT_EQ(schedule.last_term(), f11 + 4);
  EXPECT_FALSE(schedule.empty());
  EXPECT_TRUE(OfferingSchedule(3).empty());
}

TEST(ScheduleHistoryTest, FrequencyPerSeason) {
  ScheduleHistory history;
  // Course 0 ran in Fall 2011 and Fall 2013 of the 2011-2013 window.
  history.AddRecord(0, Term(Season::kFall, 2011));
  history.AddRecord(0, Term(Season::kFall, 2013));
  history.AddRecord(1, Term(Season::kSpring, 2012));
  EXPECT_EQ(history.ObservedYears(), 3);  // 2011, 2012, 2013
  EXPECT_DOUBLE_EQ(history.FrequencyInSeason(0, Season::kFall), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(history.FrequencyInSeason(0, Season::kSpring), 0.0);
  EXPECT_DOUBLE_EQ(history.FrequencyInSeason(1, Season::kSpring), 1.0 / 3.0);
}

TEST(ScheduleHistoryTest, EmptyHistoryUsesFallback) {
  ScheduleHistory history;
  EXPECT_DOUBLE_EQ(history.FrequencyInSeason(0, Season::kFall, 0.5), 0.5);
}

TEST(ScheduleHistoryTest, ImportScheduleCopiesOfferings) {
  OfferingSchedule schedule(2);
  ASSERT_TRUE(schedule.AddOffering(0, Term(Season::kFall, 2012)).ok());
  ASSERT_TRUE(schedule.AddOffering(1, Term(Season::kSpring, 2013)).ok());
  ScheduleHistory history;
  history.ImportSchedule(schedule);
  EXPECT_EQ(history.ObservedYears(), 2);
  EXPECT_GT(history.FrequencyInSeason(0, Season::kFall), 0.0);
}

TEST(OfferingProbabilityModelTest, ReleasedTermsAreCertain) {
  OfferingSchedule schedule(2);
  Term f12(Season::kFall, 2012);
  ASSERT_TRUE(schedule.AddOffering(0, f12).ok());
  ScheduleHistory history;
  history.ImportSchedule(schedule);
  OfferingProbabilityModel model(&schedule, /*release_end=*/f12 + 1,
                                 history, 0.4);
  // Within the release horizon: exact.
  EXPECT_DOUBLE_EQ(model.Probability(0, f12), 1.0);
  EXPECT_DOUBLE_EQ(model.Probability(1, f12), 0.0);
  // Beyond: historical frequency (course 0 ran every observed Fall).
  EXPECT_DOUBLE_EQ(model.Probability(0, f12 + 2), 1.0);
  EXPECT_DOUBLE_EQ(model.Probability(1, f12 + 2), 0.0);
}

TEST(OfferingProbabilityModelTest, NoHistoryFallsBack) {
  OfferingSchedule schedule(1);
  Term f12(Season::kFall, 2012);
  OfferingProbabilityModel model(&schedule, f12, ScheduleHistory(), 0.37);
  EXPECT_DOUBLE_EQ(model.Probability(0, f12 + 4), 0.37);
}

}  // namespace
}  // namespace coursenav

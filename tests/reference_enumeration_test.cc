// Cross-checks the generators against an independent, naive reference
// enumerator: a direct recursive transcription of the paper's semantics
// using none of the library's engine machinery (no ExplorationEngine, no
// ForEachSelection, no pruning). Any divergence in the shared fast paths
// (bitsets, suffix caches, combination enumeration, pruning soundness)
// shows up as a set difference here.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/deadline_generator.h"
#include "core/goal_generator.h"
#include "data/synthetic.h"
#include "requirements/expr_goal.h"
#include "tests/test_util.h"
#include "util/simd/simd.h"

namespace coursenav {
namespace {

using testing_util::AllLeafPaths;
using testing_util::Figure3Fixture;
using testing_util::GoalPaths;

/// A path as a canonical comparable value: selections (as sorted id lists)
/// per semester from the start term.
using FlatPath = std::vector<std::vector<int>>;

FlatPath Flatten(const LearningPath& path) {
  FlatPath flat;
  for (const PathStep& step : path.steps()) {
    flat.push_back(step.selection.ToIndices());
  }
  return flat;
}

/// Naive reference enumerator.
class ReferenceEnumerator {
 public:
  ReferenceEnumerator(const Catalog& catalog, const OfferingSchedule& schedule,
                      int max_per_term, Term end)
      : catalog_(catalog),
        schedule_(schedule),
        max_per_term_(max_per_term),
        end_(end) {}

  /// All deadline-driven paths from (term, completed).
  std::set<FlatPath> Enumerate(Term term, std::set<int> completed) {
    std::set<FlatPath> out;
    FlatPath prefix;
    Recurse(term, completed, prefix, &out);
    return out;
  }

 private:
  std::vector<int> Options(Term term, const std::set<int>& completed) {
    std::vector<int> options;
    for (int c = 0; c < catalog_.size(); ++c) {
      if (completed.count(c)) continue;
      if (!schedule_.IsOffered(c, term)) continue;
      // Evaluate the prerequisite expression directly on the tree.
      bool eligible = catalog_.course(c).prerequisites.Eval(
          [&](std::string_view code) {
            auto id = catalog_.FindByCode(code);
            return id.ok() && completed.count(*id) > 0;
          });
      if (eligible) options.push_back(c);
    }
    return options;
  }

  bool FutureCourseExists(Term term, const std::set<int>& completed) {
    for (Term t = term.Next(); t < end_; t = t.Next()) {
      for (int c = 0; c < catalog_.size(); ++c) {
        if (!completed.count(c) && schedule_.IsOffered(c, t)) return true;
      }
    }
    return false;
  }

  void Recurse(Term term, const std::set<int>& completed, FlatPath& prefix,
               std::set<FlatPath>* out) {
    if (term == end_) {
      out->insert(prefix);
      return;
    }
    std::vector<int> options = Options(term, completed);
    bool expanded = false;
    // All non-empty subsets within the load limit, via bitmask sweep.
    for (uint32_t mask = 1; mask < (1u << options.size()); ++mask) {
      if (simd::PopcountWord(mask) > max_per_term_) continue;
      std::vector<int> selection;
      std::set<int> next = completed;
      for (size_t i = 0; i < options.size(); ++i) {
        if ((mask >> i) & 1) {
          selection.push_back(options[i]);
          next.insert(options[i]);
        }
      }
      prefix.push_back(selection);
      Recurse(term.Next(), next, prefix, out);
      prefix.pop_back();
      expanded = true;
    }
    if (options.empty() && FutureCourseExists(term, completed)) {
      prefix.push_back({});
      Recurse(term.Next(), completed, prefix, out);
      prefix.pop_back();
      expanded = true;
    }
    if (!expanded) out->insert(prefix);  // dead end
  }

  const Catalog& catalog_;
  const OfferingSchedule& schedule_;
  int max_per_term_;
  Term end_;
};

TEST(ReferenceEnumerationTest, Figure3ExactMatch) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto generated = GenerateDeadlineDrivenPaths(
      fix.catalog, fix.schedule, fix.FreshStudent(), fix.spring13, options);
  ASSERT_TRUE(generated.ok());

  ReferenceEnumerator reference(fix.catalog, fix.schedule, 3, fix.spring13);
  std::set<FlatPath> expected = reference.Enumerate(fix.fall11, {});

  std::set<FlatPath> actual;
  for (const LearningPath& path : AllLeafPaths(generated->graph)) {
    actual.insert(Flatten(path));
  }
  EXPECT_EQ(actual, expected);
}

struct ReferenceCase {
  uint64_t seed;
  int num_courses;
  int span;
  int m;
};

class ReferenceSweepTest : public ::testing::TestWithParam<ReferenceCase> {};

TEST_P(ReferenceSweepTest, DeadlineGeneratorMatchesReference) {
  const ReferenceCase& param = GetParam();
  data::SyntheticConfig config;
  config.num_courses = param.num_courses;
  config.num_intro_courses = 2;
  config.seed = param.seed;
  config.offering_probability = 0.5;
  auto bundle = data::BuildSyntheticCatalog(config);
  ASSERT_TRUE(bundle.ok());

  ExplorationOptions options;
  options.max_courses_per_term = param.m;
  EnrollmentStatus start{config.first_term, bundle->catalog.NewCourseSet()};
  Term end = config.first_term + param.span;

  auto generated = GenerateDeadlineDrivenPaths(bundle->catalog,
                                               bundle->schedule, start, end,
                                               options);
  ASSERT_TRUE(generated.ok());
  ASSERT_TRUE(generated->termination.ok());

  ReferenceEnumerator reference(bundle->catalog, bundle->schedule, param.m,
                                end);
  std::set<FlatPath> expected = reference.Enumerate(config.first_term, {});

  std::set<FlatPath> actual;
  for (const LearningPath& path : AllLeafPaths(generated->graph)) {
    actual.insert(Flatten(path));
  }
  ASSERT_EQ(actual.size(),
            static_cast<size_t>(generated->stats.terminal_paths))
      << "duplicate paths generated (seed " << param.seed << ")";
  EXPECT_EQ(actual, expected) << "seed " << param.seed;
}

TEST_P(ReferenceSweepTest, GoalGeneratorMatchesFilteredReference) {
  const ReferenceCase& param = GetParam();
  data::SyntheticConfig config;
  config.num_courses = param.num_courses;
  config.num_intro_courses = 2;
  config.seed = param.seed;
  config.offering_probability = 0.5;
  auto bundle = data::BuildSyntheticCatalog(config);
  ASSERT_TRUE(bundle.ok());

  std::vector<std::string> goal_codes;
  for (int i = 0; i < 3 && i < config.num_courses; ++i) {
    goal_codes.push_back(bundle->catalog.course(i).code);
  }
  auto goal = ExprGoal::CompleteAll(goal_codes, bundle->catalog);
  ASSERT_TRUE(goal.ok());

  ExplorationOptions options;
  options.max_courses_per_term = param.m;
  EnrollmentStatus start{config.first_term, bundle->catalog.NewCourseSet()};
  Term end = config.first_term + param.span;

  auto generated = GenerateGoalDrivenPaths(bundle->catalog, bundle->schedule,
                                           start, end, **goal, options);
  ASSERT_TRUE(generated.ok());
  ASSERT_TRUE(generated->termination.ok());

  // Reference goal paths: truncate every deadline-driven path at the first
  // prefix whose completed set satisfies the goal; keep those that satisfy
  // it at all (deduplicated — many deadline paths share a goal prefix).
  ReferenceEnumerator reference(bundle->catalog, bundle->schedule, param.m,
                                end);
  std::set<FlatPath> expected;
  for (const FlatPath& path : reference.Enumerate(config.first_term, {})) {
    std::set<int> completed;
    FlatPath truncated;
    bool reached = false;
    for (const std::vector<int>& step : path) {
      bool satisfied = (*goal)->IsSatisfied(DynamicBitset::FromIndices(
          bundle->catalog.size(),
          std::vector<int>(completed.begin(), completed.end())));
      if (satisfied) {
        reached = true;
        break;
      }
      truncated.push_back(step);
      completed.insert(step.begin(), step.end());
    }
    if (!reached) {
      reached = (*goal)->IsSatisfied(DynamicBitset::FromIndices(
          bundle->catalog.size(),
          std::vector<int>(completed.begin(), completed.end())));
    }
    if (reached) expected.insert(truncated);
  }

  std::set<FlatPath> actual;
  for (const LearningPath& path : GoalPaths(generated->graph)) {
    actual.insert(Flatten(path));
  }
  EXPECT_EQ(actual, expected) << "seed " << param.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReferenceSweepTest,
    ::testing::Values(ReferenceCase{31, 6, 3, 2}, ReferenceCase{32, 6, 4, 2},
                      ReferenceCase{33, 7, 3, 2}, ReferenceCase{34, 5, 4, 3},
                      ReferenceCase{35, 8, 3, 2},
                      ReferenceCase{36, 6, 4, 3}));

}  // namespace
}  // namespace coursenav

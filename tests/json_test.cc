#include "util/json.h"

#include <gtest/gtest.h>

namespace coursenav {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_EQ(*JsonValue::Parse("true")->GetBool(), true);
  EXPECT_EQ(*JsonValue::Parse("false")->GetBool(), false);
  EXPECT_DOUBLE_EQ(*JsonValue::Parse("3.25")->GetNumber(), 3.25);
  EXPECT_EQ(*JsonValue::Parse("-17")->GetInt(), -17);
  EXPECT_EQ(*JsonValue::Parse("\"hi\"")->GetString(), "hi");
}

TEST(JsonParseTest, NestedStructures) {
  auto doc = JsonValue::Parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(doc->is_object());
  auto a = doc->Get("a");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array().size(), 3u);
  EXPECT_EQ(*a->array()[0].GetInt(), 1);
  EXPECT_EQ(*a->array()[2].Get("b")->GetBool(), true);
  EXPECT_EQ(*doc->Get("c")->GetString(), "x");
}

TEST(JsonParseTest, StringEscapes) {
  auto v = JsonValue::Parse(R"("a\"b\\c\nd\tA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v->GetString(), "a\"b\\c\nd\tA");
}

TEST(JsonParseTest, UnicodeEscapeToUtf8) {
  auto v = JsonValue::Parse(R"("é")");  // é
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v->GetString(), "\xc3\xa9");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("trulse").ok());
  EXPECT_FALSE(JsonValue::Parse("{1: 2}").ok());
  EXPECT_FALSE(JsonValue::Parse("[1] extra").ok());
  EXPECT_FALSE(JsonValue::Parse(R"("\q")").ok());
}

TEST(JsonParseTest, WhitespaceTolerated) {
  auto v = JsonValue::Parse("  {\n \"a\" :\t1 }  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v->Get("a")->GetInt(), 1);
}

TEST(JsonAccessTest, TypeMismatchErrors) {
  JsonValue num(3.5);
  EXPECT_FALSE(num.GetBool().ok());
  EXPECT_FALSE(num.GetString().ok());
  EXPECT_FALSE(num.GetInt().ok());  // non-integral
  EXPECT_FALSE(num.Get("key").ok());
  EXPECT_FALSE(num.Has("key"));
}

TEST(JsonAccessTest, MissingKeyIsNotFound) {
  auto doc = JsonValue::Parse(R"({"a": 1})");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc->Get("b").status().IsNotFound());
  EXPECT_TRUE(doc->Has("a"));
}

TEST(JsonDumpTest, CompactRoundTrip) {
  const char* text = R"({"arr":[1,2.5,"x"],"nested":{"t":true},"z":null})";
  auto doc = JsonValue::Parse(text);
  ASSERT_TRUE(doc.ok());
  std::string dumped = doc->Dump();
  auto reparsed = JsonValue::Parse(dumped);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(), dumped);
}

TEST(JsonDumpTest, EscapesControlCharacters) {
  JsonValue v(std::string("a\nb\x01"));
  EXPECT_EQ(v.Dump(), "\"a\\nb\\u0001\"");
}

TEST(JsonDumpTest, IntegersPrintWithoutDecimal) {
  JsonValue v(static_cast<int64_t>(41556657));
  EXPECT_EQ(v.Dump(), "41556657");
}

TEST(JsonDumpTest, PrettyPrintIndents) {
  JsonValue::Object obj;
  obj["a"] = JsonValue(1);
  std::string pretty = JsonValue(std::move(obj)).Dump(2);
  EXPECT_EQ(pretty, "{\n  \"a\": 1\n}");
}

TEST(JsonDumpTest, ObjectKeysSorted) {
  auto doc = JsonValue::Parse(R"({"b":1,"a":2})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Dump(), R"({"a":2,"b":1})");
}

TEST(JsonEscapeTest, QuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("a\"b\\"), "\"a\\\"b\\\\\"");
}

}  // namespace
}  // namespace coursenav

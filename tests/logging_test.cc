#include "util/logging.h"

#include <gtest/gtest.h>

namespace coursenav {
namespace {

/// Restores the global log level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroCompilesAndStreams) {
  SetLogLevel(LogLevel::kError);  // suppress output during the test run
  COURSENAV_LOG(kDebug) << "suppressed " << 42;
  COURSENAV_LOG(kInfo) << "also suppressed " << 3.5;
  // No crash, no way to observe stderr portably here — this is a smoke
  // test that the macro expands and streams arbitrary types.
  SUCCEED();
}

TEST_F(LoggingTest, DisabledMessagesSkipFormatting) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return std::string("payload");
  };
  // Operands are still evaluated (stream semantics), but the sink must not
  // grow: verify by streaming into a suppressed message repeatedly.
  for (int i = 0; i < 3; ++i) {
    COURSENAV_LOG(kInfo) << expensive();
  }
  EXPECT_EQ(evaluations, 3);
}

}  // namespace
}  // namespace coursenav

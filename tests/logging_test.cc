#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace coursenav {
namespace {

/// Restores the global log level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroCompilesAndStreams) {
  SetLogLevel(LogLevel::kError);  // suppress output during the test run
  COURSENAV_LOG(kDebug) << "suppressed " << 42;
  COURSENAV_LOG(kInfo) << "also suppressed " << 3.5;
  // No crash, no way to observe stderr portably here — this is a smoke
  // test that the macro expands and streams arbitrary types.
  SUCCEED();
}

TEST_F(LoggingTest, DisabledMessagesSkipFormatting) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return std::string("payload");
  };
  // Operands are still evaluated (stream semantics), but the sink must not
  // grow: verify by streaming into a suppressed message repeatedly.
  for (int i = 0; i < 3; ++i) {
    COURSENAV_LOG(kInfo) << expensive();
  }
  EXPECT_EQ(evaluations, 3);
}

TEST_F(LoggingTest, SinkCapturesLevelAndMessage) {
  SetLogLevel(LogLevel::kDebug);
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&](LogLevel level, std::string_view message) {
    captured.emplace_back(level, std::string(message));
  });
  COURSENAV_LOG(kInfo) << "hello " << 7;
  COURSENAV_LOG(kError) << "boom";
  SetLogSink(nullptr);
  COURSENAV_LOG(kError) << "to stderr, not the sink";

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_NE(captured[0].second.find("hello 7"), std::string::npos);
  // The prefix carries the level tag and basename:line location.
  EXPECT_NE(captured[0].second.find("[INFO logging_test.cc:"),
            std::string::npos);
  EXPECT_EQ(captured[1].first, LogLevel::kError);
  EXPECT_NE(captured[1].second.find("boom"), std::string::npos);
}

TEST_F(LoggingTest, ConcurrentLoggersNeverInterleave) {
  SetLogLevel(LogLevel::kInfo);
  // The sink contract says emission is serialized, so plain (unsynchronized)
  // sink state must be safe — tsan/asan runs of this test verify exactly
  // that, and the content checks catch interleaved bytes.
  std::vector<std::string> captured;
  SetLogSink([&](LogLevel, std::string_view message) {
    captured.emplace_back(message);
  });

  constexpr int kThreads = 8;
  constexpr int kMessagesPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kMessagesPerThread; ++i) {
        COURSENAV_LOG(kInfo) << "thread=" << t << " seq=" << i << " end";
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  SetLogSink(nullptr);

  ASSERT_EQ(captured.size(),
            static_cast<size_t>(kThreads * kMessagesPerThread));
  int per_thread[kThreads] = {};
  for (const std::string& message : captured) {
    // Every message must be whole: prefix, both fields, terminator.
    EXPECT_NE(message.find("[INFO"), std::string::npos) << message;
    size_t thread_pos = message.find("thread=");
    ASSERT_NE(thread_pos, std::string::npos) << message;
    EXPECT_NE(message.find(" seq="), std::string::npos) << message;
    EXPECT_NE(message.find(" end"), std::string::npos) << message;
    ++per_thread[std::stoi(message.substr(thread_pos + 7))];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], kMessagesPerThread) << "thread " << t;
  }
}

}  // namespace
}  // namespace coursenav

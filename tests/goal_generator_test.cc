#include "core/goal_generator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/deadline_generator.h"
#include "data/synthetic.h"
#include "requirements/expr_goal.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::AllLeafPaths;
using testing_util::ContainsPath;
using testing_util::Figure3Fixture;
using testing_util::GoalPaths;

std::shared_ptr<const Goal> AllThreeCoursesGoal(const Figure3Fixture& fix) {
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  EXPECT_TRUE(goal.ok());
  return *goal;
}

TEST(GoalGeneratorTest, ReproducesPaperSection423Example) {
  // Goal: take all of {11A, 21A, 29A} by Fall'12. The paper's walkthrough
  // prunes n4 (availability) and leaves exactly one learning path
  // n1 -> n3 -> n6: take {11A, 29A} then {21A}.
  Figure3Fixture fix;
  Term fall12(Season::kFall, 2012);
  ExplorationOptions options;
  auto goal = AllThreeCoursesGoal(fix);

  auto result = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                        fix.FreshStudent(), fall12, *goal,
                                        options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.ok());
  EXPECT_EQ(result->stats.goal_paths, 1);
  EXPECT_EQ(result->stats.terminal_paths, 1);
  EXPECT_GT(result->stats.pruned_availability, 0);

  std::vector<LearningPath> paths = GoalPaths(result->graph);
  ASSERT_EQ(paths.size(), 1u);
  const LearningPath& path = paths[0];
  ASSERT_EQ(path.Length(), 2);
  EXPECT_EQ(path.steps()[0].selection.ToIndices(),
            (std::vector<int>{fix.c11a, fix.c29a}));
  EXPECT_EQ(path.steps()[1].selection.ToIndices(),
            std::vector<int>{fix.c21a});
}

TEST(GoalGeneratorTest, GoalNodesStopExpanding) {
  // Goal: just 11A. Paths end the moment 11A is completed, even though
  // more semesters remain.
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  auto result = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                        fix.FreshStudent(), fix.spring13,
                                        **goal, options);
  ASSERT_TRUE(result.ok());
  for (const LearningPath& path : GoalPaths(result->graph)) {
    // 11A must be in the final step's selection (goal reached exactly then).
    ASSERT_FALSE(path.steps().empty());
    EXPECT_TRUE(path.steps().back().selection.test(fix.c11a));
  }
  EXPECT_GT(result->stats.goal_paths, 0);
}

TEST(GoalGeneratorTest, UnreachableGoalYieldsNoGoalPaths) {
  Figure3Fixture fix;
  ExplorationOptions options;
  // 21A requires 11A but the goal forbids... simply demand an impossible
  // timeline: everything by Spring'12 (21A needs 11A first, and 21A only
  // runs Spring'12 while 11A first runs Fall'11 — possible; so instead
  // demand completion by Fall'11 + 1 = Spring'12 with goal including 21A
  // and 29A and 11A in 1 semester with m=2).
  ExplorationOptions tight;
  tight.max_courses_per_term = 2;
  auto goal = AllThreeCoursesGoal(fix);
  auto result = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                        fix.FreshStudent(),
                                        fix.fall11 + 1, *goal, tight);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.goal_paths, 0);
  EXPECT_GT(result->stats.TotalPruned(), 0);
}

TEST(GoalGeneratorTest, PruningPreservesGoalPaths) {
  // Lemma 1 + §4.2.2: the goal-path set is identical with and without
  // pruning, on the Figure 3 scenario.
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = AllThreeCoursesGoal(fix);

  GoalDrivenConfig no_pruning;
  no_pruning.enable_time_pruning = false;
  no_pruning.enable_availability_pruning = false;
  no_pruning.enforce_min_selection = false;

  auto pruned = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                        fix.FreshStudent(), fix.spring13,
                                        *goal, options, GoalDrivenConfig{});
  auto unpruned = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                          fix.FreshStudent(), fix.spring13,
                                          *goal, options, no_pruning);
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(unpruned.ok());

  std::vector<LearningPath> pruned_paths = GoalPaths(pruned->graph);
  std::vector<LearningPath> unpruned_paths = GoalPaths(unpruned->graph);
  EXPECT_EQ(pruned_paths.size(), unpruned_paths.size());
  for (const LearningPath& path : unpruned_paths) {
    EXPECT_TRUE(ContainsPath(pruned_paths, path));
  }
  // Pruning reduces the generated graph.
  EXPECT_LE(pruned->graph.num_nodes(), unpruned->graph.num_nodes());
}

TEST(GoalGeneratorTest, GoalPathsAreSubsetOfDeadlinePaths) {
  // Every goal path must be a (possibly truncated) deadline-driven path:
  // validate against the catalog and check the goal holds at its end.
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = AllThreeCoursesGoal(fix);
  auto result = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                        fix.FreshStudent(), fix.spring13,
                                        *goal, options);
  ASSERT_TRUE(result.ok());
  for (const LearningPath& path : GoalPaths(result->graph)) {
    EXPECT_TRUE(path.Validate(fix.catalog, fix.schedule).ok());
    EXPECT_TRUE(goal->IsSatisfied(path.FinalCompleted()));
  }
}

TEST(GoalGeneratorTest, TimePruningCountsMinSelectionSkips) {
  // With a goal of all three courses by Fall'12 and m=3, Equation 1 forces
  // a minimum selection size at the root (3 courses needed, 1 later
  // semester of capacity 3 — min_1 = 0; tighten with m=2: left=3,
  // remaining capacity 2 -> must take >= 1 now). Verify the stats counters
  // move when pruning is enabled.
  Figure3Fixture fix;
  ExplorationOptions options;
  options.max_courses_per_term = 2;
  auto goal = AllThreeCoursesGoal(fix);
  auto result = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                        fix.FreshStudent(), fix.fall11 + 2,
                                        *goal, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.TotalPruned(), 0);
}

/// Property sweep over random catalogs: pruned and unpruned goal-path sets
/// coincide, and goal paths are valid.
struct SoundnessCase {
  uint64_t seed;
  int num_courses;
  int span;
};

class PruningSoundnessTest : public ::testing::TestWithParam<SoundnessCase> {
};

TEST_P(PruningSoundnessTest, PrunedEqualsUnprunedGoalSet) {
  const SoundnessCase& param = GetParam();
  data::SyntheticConfig config;
  config.num_courses = param.num_courses;
  config.num_intro_courses = 3;
  config.seed = param.seed;
  config.offering_probability = 0.5;
  auto bundle = data::BuildSyntheticCatalog(config);
  ASSERT_TRUE(bundle.ok());

  // Goal: complete the three intro courses plus one layer-1 course.
  std::vector<std::string> goal_codes;
  for (int i = 0; i < 4; ++i) {
    goal_codes.push_back(bundle->catalog.course(i).code);
  }
  auto goal = ExprGoal::CompleteAll(goal_codes, bundle->catalog);
  ASSERT_TRUE(goal.ok());

  ExplorationOptions options;
  options.max_courses_per_term = 2;
  EnrollmentStatus start{config.first_term, bundle->catalog.NewCourseSet()};
  Term end = config.first_term + param.span;

  GoalDrivenConfig no_pruning;
  no_pruning.enable_time_pruning = false;
  no_pruning.enable_availability_pruning = false;
  no_pruning.enforce_min_selection = false;

  auto pruned = GenerateGoalDrivenPaths(bundle->catalog, bundle->schedule,
                                        start, end, **goal, options);
  auto unpruned = GenerateGoalDrivenPaths(bundle->catalog, bundle->schedule,
                                          start, end, **goal, options,
                                          no_pruning);
  ASSERT_TRUE(pruned.ok());
  ASSERT_TRUE(unpruned.ok());
  ASSERT_TRUE(pruned->termination.ok());
  ASSERT_TRUE(unpruned->termination.ok());

  std::vector<LearningPath> pruned_paths = GoalPaths(pruned->graph);
  std::vector<LearningPath> unpruned_paths = GoalPaths(unpruned->graph);
  ASSERT_EQ(pruned_paths.size(), unpruned_paths.size())
      << "seed=" << param.seed;
  for (const LearningPath& path : unpruned_paths) {
    EXPECT_TRUE(ContainsPath(pruned_paths, path)) << "seed=" << param.seed;
  }
  for (const LearningPath& path : pruned_paths) {
    EXPECT_TRUE(path.Validate(bundle->catalog, bundle->schedule).ok());
    EXPECT_TRUE((*goal)->IsSatisfied(path.FinalCompleted()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomCatalogs, PruningSoundnessTest,
    ::testing::Values(SoundnessCase{1, 10, 4}, SoundnessCase{2, 10, 4},
                      SoundnessCase{3, 12, 3}, SoundnessCase{4, 12, 4},
                      SoundnessCase{5, 8, 5}, SoundnessCase{6, 14, 3},
                      SoundnessCase{7, 10, 4}, SoundnessCase{8, 16, 3}));

}  // namespace
}  // namespace coursenav

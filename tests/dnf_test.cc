#include "expr/dnf.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "expr/parser.h"
#include "util/random.h"

namespace coursenav::expr {
namespace {

VarResolver TableResolver() {
  return [](std::string_view name) -> Result<int> {
    if (name.size() == 1 && name[0] >= 'A' && name[0] <= 'H') {
      return name[0] - 'A';
    }
    return Status::NotFound("unknown var");
  };
}

Dnf MakeDnf(const char* text, int max_clauses = 4096) {
  auto parsed = ParseBoolExpr(text);
  EXPECT_TRUE(parsed.ok()) << text;
  auto dnf = Dnf::FromExpr(*parsed, TableResolver(), 8, max_clauses);
  EXPECT_TRUE(dnf.ok()) << text;
  return std::move(dnf).value();
}

DynamicBitset Bits(std::initializer_list<int> ids) {
  DynamicBitset b(8);
  for (int id : ids) b.set(id);
  return b;
}

TEST(DnfTest, SingleClauseConjunction) {
  Dnf d = MakeDnf("A and B");
  ASSERT_EQ(d.clauses().size(), 1u);
  EXPECT_TRUE(d.Eval(Bits({0, 1})));
  EXPECT_FALSE(d.Eval(Bits({0})));
}

TEST(DnfTest, DisjunctionProducesClausePerBranch) {
  Dnf d = MakeDnf("A and B or C");
  EXPECT_EQ(d.clauses().size(), 2u);
  EXPECT_TRUE(d.Eval(Bits({2})));
  EXPECT_TRUE(d.Eval(Bits({0, 1})));
  EXPECT_FALSE(d.Eval(Bits({0})));
}

TEST(DnfTest, ConstantsConvert) {
  EXPECT_TRUE(MakeDnf("true").IsTrue());
  EXPECT_TRUE(MakeDnf("false").IsFalse());
  // x or true == true (absorption drops the x clause).
  EXPECT_TRUE(MakeDnf("A or true").IsTrue());
}

TEST(DnfTest, ContradictoryClauseDropped) {
  Dnf d = MakeDnf("A and not A");
  EXPECT_TRUE(d.IsFalse());
}

TEST(DnfTest, AbsorptionRemovesSubsumedClauses) {
  // A or (A and B) == A.
  Dnf d = MakeDnf("A or (A and B)");
  ASSERT_EQ(d.clauses().size(), 1u);
  EXPECT_EQ(d.clauses()[0].positive.ToIndices(), std::vector<int>{0});
}

TEST(DnfTest, NegationPushedInward) {
  Dnf d = MakeDnf("not (A or B)");
  ASSERT_EQ(d.clauses().size(), 1u);
  EXPECT_TRUE(d.Eval(Bits({})));
  EXPECT_FALSE(d.Eval(Bits({0})));
  EXPECT_FALSE(d.Eval(Bits({1})));
}

TEST(DnfTest, ClauseLimitEnforced) {
  // (A or B) and (C or D) and (E or F) and (G or H) = 16 clauses.
  auto parsed = ParseBoolExpr(
      "(A or B) and (C or D) and (E or F) and (G or H)");
  ASSERT_TRUE(parsed.ok());
  auto too_small = Dnf::FromExpr(*parsed, TableResolver(), 8, 8);
  EXPECT_FALSE(too_small.ok());
  EXPECT_TRUE(too_small.status().IsResourceExhausted());
  auto big_enough = Dnf::FromExpr(*parsed, TableResolver(), 8, 16);
  ASSERT_TRUE(big_enough.ok());
  EXPECT_EQ(big_enough->clauses().size(), 16u);
}

TEST(DnfTest, MinAdditionalCourses) {
  Dnf d = MakeDnf("(A and B and C) or (D and E)");
  EXPECT_EQ(d.MinAdditionalCourses(Bits({})), 2);     // D, E
  EXPECT_EQ(d.MinAdditionalCourses(Bits({0, 1})), 1); // C
  EXPECT_EQ(d.MinAdditionalCourses(Bits({0, 1, 2})), 0);
}

TEST(DnfTest, MinAdditionalSkipsDeadClauses) {
  // Clause (A and not B) is dead once B is completed.
  Dnf d = MakeDnf("(A and not B) or (C and D and E)");
  EXPECT_EQ(d.MinAdditionalCourses(Bits({1})), 3);
  EXPECT_EQ(d.MinAdditionalCourses(Bits({})), 1);
}

TEST(DnfTest, MinAdditionalUnreachable) {
  Dnf d = MakeDnf("A and not B");
  EXPECT_EQ(d.MinAdditionalCourses(Bits({1})), Dnf::kUnreachable);
  EXPECT_TRUE(MakeDnf("false").MinAdditionalCourses(Bits({})) ==
              Dnf::kUnreachable);
}

TEST(DnfTest, AchievableWith) {
  Dnf d = MakeDnf("A and B");
  EXPECT_TRUE(d.AchievableWith(Bits({0}), Bits({1})));
  EXPECT_FALSE(d.AchievableWith(Bits({0}), Bits({2})));
  EXPECT_TRUE(d.AchievableWith(Bits({0, 1}), Bits({})));
}

TEST(DnfTest, AchievableWithRespectsDeadClauses) {
  Dnf d = MakeDnf("A and not B");
  // B already completed: clause dead no matter what is available.
  EXPECT_FALSE(d.AchievableWith(Bits({1}), Bits({0})));
  // B not completed: optimistically achievable (we may never take B).
  EXPECT_TRUE(d.AchievableWith(Bits({}), Bits({0, 1})));
}

/// Property: DNF evaluation equals original expression evaluation over all
/// 2^8 assignments, for random expressions.
class DnfEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

Expr RandomExpr(Random& rng, int depth) {
  if (depth == 0 || rng.Bernoulli(0.35)) {
    Expr var = Expr::Var(std::string(1, static_cast<char>(
                                            'A' + rng.UniformInt(0, 7))));
    return rng.Bernoulli(0.25) ? Expr::Not(var) : var;
  }
  std::vector<Expr> ops;
  int n = rng.UniformInt(2, 3);
  for (int i = 0; i < n; ++i) ops.push_back(RandomExpr(rng, depth - 1));
  return rng.Bernoulli(0.5) ? Expr::And(std::move(ops))
                            : Expr::Or(std::move(ops));
}

TEST_P(DnfEquivalenceTest, EvalMatchesSourceExpression) {
  Random rng(GetParam());
  for (int iter = 0; iter < 25; ++iter) {
    Expr tree = RandomExpr(rng, 3);
    auto dnf = Dnf::FromExpr(tree, TableResolver(), 8, 1 << 14);
    ASSERT_TRUE(dnf.ok());
    for (int assignment = 0; assignment < 256; ++assignment) {
      DynamicBitset bits(8);
      for (int i = 0; i < 8; ++i) {
        if ((assignment >> i) & 1) bits.set(i);
      }
      bool expected = tree.Eval(
          [&](std::string_view name) { return bits.test(name[0] - 'A'); });
      ASSERT_EQ(dnf->Eval(bits), expected)
          << tree.ToString() << " @ " << bits.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44));

/// Property: MinAdditionalCourses is a *sound lower bound* — for any X and
/// any superset X' of X that satisfies the DNF, |X' - X| >= bound.
TEST(DnfSoundnessTest, MinAdditionalIsLowerBound) {
  Random rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    Expr tree = RandomExpr(rng, 3);
    auto dnf = Dnf::FromExpr(tree, TableResolver(), 8, 1 << 14);
    ASSERT_TRUE(dnf.ok());
    for (int x = 0; x < 256; ++x) {
      DynamicBitset bits_x(8);
      for (int i = 0; i < 8; ++i) {
        if ((x >> i) & 1) bits_x.set(i);
      }
      int bound = dnf->MinAdditionalCourses(bits_x);
      for (int sup = x;; sup = (sup + 1) | x) {
        DynamicBitset bits_sup(8);
        for (int i = 0; i < 8; ++i) {
          if ((sup >> i) & 1) bits_sup.set(i);
        }
        if (dnf->Eval(bits_sup)) {
          int added = bits_sup.count() - bits_x.count();
          ASSERT_LE(bound, added)
              << tree.ToString() << " X=" << bits_x.ToString()
              << " X'=" << bits_sup.ToString();
        }
        if (sup == 255) break;
      }
    }
  }
}

TEST(DnfBatchTest, BatchMethodsMatchScalarPerRow) {
  Random rng(2468);
  for (int iter = 0; iter < 20; ++iter) {
    Expr tree = RandomExpr(rng, 3);
    auto dnf = Dnf::FromExpr(tree, TableResolver(), 8, 1 << 14);
    ASSERT_TRUE(dnf.ok());
    const size_t stride = dnf->word_stride();
    ASSERT_EQ(stride, 1u);  // 8-course universe packs into one word

    // Every completed set over the 8-course universe, as one big batch.
    std::vector<uint64_t> rows(256 * stride);
    for (int x = 0; x < 256; ++x) rows[static_cast<size_t>(x)] = static_cast<uint64_t>(x);
    DynamicBitset available = Bits({0, 2, 4, 6});

    std::vector<int> batch_min(256);
    dnf->MinAdditionalCoursesBatch(rows.data(), stride, 256,
                                   batch_min.data());
    std::vector<uint8_t> batch_ach(256);
    {
      auto out = std::make_unique<bool[]>(256);
      dnf->AchievableWithBatch(rows.data(), stride, 256, available,
                               out.get());
      for (int x = 0; x < 256; ++x) {
        batch_ach[static_cast<size_t>(x)] = out[x] ? 1 : 0;
      }
    }

    for (int x = 0; x < 256; ++x) {
      DynamicBitset bits_x(8);
      for (int i = 0; i < 8; ++i) {
        if ((x >> i) & 1) bits_x.set(i);
      }
      EXPECT_EQ(batch_min[static_cast<size_t>(x)],
                dnf->MinAdditionalCourses(bits_x))
          << tree.ToString() << " X=" << bits_x.ToString();
      EXPECT_EQ(batch_ach[static_cast<size_t>(x)] != 0,
                dnf->AchievableWith(bits_x, available))
          << tree.ToString() << " X=" << bits_x.ToString();
    }
  }
}

TEST(DnfBatchTest, EmptyBatchIsANoOp) {
  Dnf d = MakeDnf("A and B");
  d.MinAdditionalCoursesBatch(nullptr, d.word_stride(), 0, nullptr);
  d.AchievableWithBatch(nullptr, d.word_stride(), 0, Bits({0}), nullptr);
}

}  // namespace
}  // namespace coursenav::expr

#include "core/counting.h"

#include <gtest/gtest.h>

#include "core/deadline_generator.h"
#include "core/goal_generator.h"
#include "data/synthetic.h"
#include "requirements/expr_goal.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::Figure3Fixture;

TEST(CountingTest, Figure3DeadlineCountMatchesGraph) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto counted = CountDeadlineDrivenPaths(fix.catalog, fix.schedule,
                                          fix.FreshStudent(), fix.spring13,
                                          options);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->total_paths, 3u);
  EXPECT_EQ(counted->goal_paths, 2u);  // paths reaching the end semester
  EXPECT_FALSE(counted->saturated);
  EXPECT_GT(counted->distinct_statuses, 0);
}

TEST(CountingTest, Figure3GoalCountMatchesGraph) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  auto counted = CountGoalDrivenPaths(fix.catalog, fix.schedule,
                                      fix.FreshStudent(),
                                      Term(Season::kFall, 2012), **goal,
                                      options);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->total_paths, 1u);
  EXPECT_EQ(counted->goal_paths, 1u);
}

TEST(CountingTest, InputValidation) {
  Figure3Fixture fix;
  ExplorationOptions options;
  EXPECT_TRUE(CountDeadlineDrivenPaths(fix.catalog, fix.schedule,
                                       fix.FreshStudent(), fix.fall11,
                                       options)
                  .status()
                  .IsInvalidArgument());
}

TEST(CountingTest, StatusBudgetFails) {
  Figure3Fixture fix;
  ExplorationOptions options;
  options.limits.max_nodes = 2;
  auto counted = CountDeadlineDrivenPaths(fix.catalog, fix.schedule,
                                          fix.FreshStudent(), fix.spring13,
                                          options);
  EXPECT_TRUE(counted.status().IsResourceExhausted());
}


TEST(CountingTest, VoluntarySkipSemanticsMatchGeneration) {
  Figure3Fixture fix;
  ExplorationOptions options;
  options.allow_voluntary_skip = true;
  auto generated = GenerateDeadlineDrivenPaths(
      fix.catalog, fix.schedule, fix.FreshStudent(), fix.spring13, options);
  auto counted = CountDeadlineDrivenPaths(fix.catalog, fix.schedule,
                                          fix.FreshStudent(), fix.spring13,
                                          options);
  ASSERT_TRUE(generated.ok());
  ASSERT_TRUE(generated->termination.ok());
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->total_paths,
            static_cast<uint64_t>(generated->stats.terminal_paths));
}

TEST(CountingTest, GoalSatisfiedAtRootCountsOnePath) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  DynamicBitset done = fix.catalog.NewCourseSet();
  done.set(fix.c11a);
  EnrollmentStatus start{fix.fall11, done};
  auto counted = CountGoalDrivenPaths(fix.catalog, fix.schedule, start,
                                      fix.spring13, **goal, options);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->total_paths, 1u);
  EXPECT_EQ(counted->goal_paths, 1u);
  EXPECT_EQ(counted->distinct_statuses, 1);
}

/// Property: DAG-memoized counts equal materialized leaf counts, for both
/// generators, across random catalogs and spans.
struct CountCase {
  uint64_t seed;
  int num_courses;
  int span;
  int m;
};

class CountEquivalenceTest : public ::testing::TestWithParam<CountCase> {};

TEST_P(CountEquivalenceTest, DeadlineCountMatchesMaterialization) {
  const CountCase& param = GetParam();
  data::SyntheticConfig config;
  config.num_courses = param.num_courses;
  config.num_intro_courses = 3;
  config.seed = param.seed;
  auto bundle = data::BuildSyntheticCatalog(config);
  ASSERT_TRUE(bundle.ok());

  ExplorationOptions options;
  options.max_courses_per_term = param.m;
  EnrollmentStatus start{config.first_term, bundle->catalog.NewCourseSet()};
  Term end = config.first_term + param.span;

  auto generated = GenerateDeadlineDrivenPaths(bundle->catalog,
                                               bundle->schedule, start, end,
                                               options);
  auto counted = CountDeadlineDrivenPaths(bundle->catalog, bundle->schedule,
                                          start, end, options);
  ASSERT_TRUE(generated.ok());
  ASSERT_TRUE(generated->termination.ok());
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->total_paths,
            static_cast<uint64_t>(generated->stats.terminal_paths))
      << "seed=" << param.seed;
  EXPECT_EQ(counted->goal_paths,
            static_cast<uint64_t>(generated->stats.goal_paths))
      << "seed=" << param.seed;
  // The DAG never has more statuses than the tree has nodes.
  EXPECT_LE(counted->distinct_statuses, generated->stats.nodes_created);
}

TEST_P(CountEquivalenceTest, GoalCountMatchesMaterialization) {
  const CountCase& param = GetParam();
  data::SyntheticConfig config;
  config.num_courses = param.num_courses;
  config.num_intro_courses = 3;
  config.seed = param.seed;
  auto bundle = data::BuildSyntheticCatalog(config);
  ASSERT_TRUE(bundle.ok());

  std::vector<std::string> goal_codes;
  for (int i = 0; i < 4; ++i) {
    goal_codes.push_back(bundle->catalog.course(i).code);
  }
  auto goal = ExprGoal::CompleteAll(goal_codes, bundle->catalog);
  ASSERT_TRUE(goal.ok());

  ExplorationOptions options;
  options.max_courses_per_term = param.m;
  EnrollmentStatus start{config.first_term, bundle->catalog.NewCourseSet()};
  Term end = config.first_term + param.span;

  auto generated = GenerateGoalDrivenPaths(bundle->catalog, bundle->schedule,
                                           start, end, **goal, options);
  auto counted = CountGoalDrivenPaths(bundle->catalog, bundle->schedule,
                                      start, end, **goal, options);
  ASSERT_TRUE(generated.ok());
  ASSERT_TRUE(generated->termination.ok());
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->total_paths,
            static_cast<uint64_t>(generated->stats.terminal_paths))
      << "seed=" << param.seed;
  EXPECT_EQ(counted->goal_paths,
            static_cast<uint64_t>(generated->stats.goal_paths))
      << "seed=" << param.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CountEquivalenceTest,
    ::testing::Values(CountCase{21, 10, 4, 2}, CountCase{22, 10, 4, 3},
                      CountCase{23, 12, 3, 2}, CountCase{24, 8, 5, 2},
                      CountCase{25, 12, 4, 2}, CountCase{26, 14, 3, 3},
                      CountCase{27, 9, 4, 2}, CountCase{28, 11, 4, 3}));

}  // namespace
}  // namespace coursenav

#include "data/transcripts.h"

#include <gtest/gtest.h>

#include "core/goal_generator.h"
#include "data/brandeis_cs.h"
#include "data/synthetic.h"
#include "requirements/expr_goal.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::ContainsPath;
using testing_util::GoalPaths;

TEST(TranscriptSimulationTest, PathsReachGoalAndValidate) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  EnrollmentStatus start{data::StartTermForSpan(5),
                         dataset.catalog.NewCourseSet()};
  Term end = data::EvaluationEndTerm();
  ExplorationOptions options;

  data::TranscriptSimulationConfig config;
  config.num_students = 20;
  config.seed = 11;
  auto paths = data::SimulateTranscripts(dataset.catalog, dataset.schedule,
                                         *dataset.cs_major, start, end,
                                         options, config);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 20u);
  for (const LearningPath& path : *paths) {
    EXPECT_TRUE(path.Validate(dataset.catalog, dataset.schedule).ok())
        << path.ToString(dataset.catalog);
    EXPECT_TRUE(dataset.cs_major->IsSatisfied(path.FinalCompleted()));
    // Trimmed: the goal is reached exactly at the last step, not before.
    DynamicBitset before_last = path.start_completed();
    for (size_t i = 0; i + 1 < path.steps().size(); ++i) {
      before_last |= path.steps()[i].selection;
    }
    EXPECT_FALSE(dataset.cs_major->IsSatisfied(before_last));
  }
}

TEST(TranscriptSimulationTest, DeterministicPerSeed) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  EnrollmentStatus start{data::StartTermForSpan(5),
                         dataset.catalog.NewCourseSet()};
  Term end = data::EvaluationEndTerm();
  ExplorationOptions options;
  data::TranscriptSimulationConfig config;
  config.num_students = 5;
  config.seed = 42;

  auto first = data::SimulateTranscripts(dataset.catalog, dataset.schedule,
                                         *dataset.cs_major, start, end,
                                         options, config);
  auto second = data::SimulateTranscripts(dataset.catalog, dataset.schedule,
                                          *dataset.cs_major, start, end,
                                          options, config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_TRUE((*first)[i] == (*second)[i]);
  }
}

TEST(TranscriptSimulationTest, ContainmentInGoalDrivenOutput) {
  // The §5.2 experiment in miniature: every simulated transcript must
  // appear in the goal-driven generator's path set (Lemma 1 soundness).
  data::SyntheticConfig catalog_config;
  catalog_config.num_courses = 10;
  catalog_config.num_intro_courses = 4;
  catalog_config.seed = 3;
  auto bundle = data::BuildSyntheticCatalog(catalog_config);
  ASSERT_TRUE(bundle.ok());

  std::vector<std::string> goal_codes;
  for (int i = 0; i < 4; ++i) {
    goal_codes.push_back(bundle->catalog.course(i).code);
  }
  auto goal = ExprGoal::CompleteAll(goal_codes, bundle->catalog);
  ASSERT_TRUE(goal.ok());

  ExplorationOptions options;
  options.max_courses_per_term = 2;
  EnrollmentStatus start{catalog_config.first_term,
                         bundle->catalog.NewCourseSet()};
  Term end = catalog_config.first_term + 4;

  data::TranscriptSimulationConfig sim_config;
  sim_config.num_students = 15;
  sim_config.seed = 9;
  auto transcripts = data::SimulateTranscripts(
      bundle->catalog, bundle->schedule, **goal, start, end, options,
      sim_config);
  ASSERT_TRUE(transcripts.ok());

  auto generated = GenerateGoalDrivenPaths(bundle->catalog, bundle->schedule,
                                           start, end, **goal, options);
  ASSERT_TRUE(generated.ok());
  std::vector<LearningPath> generated_paths = GoalPaths(generated->graph);
  for (const LearningPath& transcript : *transcripts) {
    EXPECT_TRUE(ContainsPath(generated_paths, transcript))
        << transcript.ToString(bundle->catalog);
  }
}

TEST(TranscriptSimulationTest, InputValidation) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  EnrollmentStatus start{data::StartTermForSpan(4),
                         dataset.catalog.NewCourseSet()};
  ExplorationOptions options;
  data::TranscriptSimulationConfig config;
  config.num_students = 0;
  EXPECT_TRUE(data::SimulateTranscripts(dataset.catalog, dataset.schedule,
                                        *dataset.cs_major, start,
                                        data::EvaluationEndTerm(), options,
                                        config)
                  .status()
                  .IsInvalidArgument());
}

TEST(TranscriptSimulationTest, ImpossibleGoalExhaustsRetries) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  // One semester is not enough for a 12-course major.
  EnrollmentStatus start{data::StartTermForSpan(1),
                         dataset.catalog.NewCourseSet()};
  ExplorationOptions options;
  data::TranscriptSimulationConfig config;
  config.num_students = 1;
  config.max_attempts_per_student = 3;
  EXPECT_TRUE(data::SimulateTranscripts(dataset.catalog, dataset.schedule,
                                        *dataset.cs_major, start,
                                        data::EvaluationEndTerm(), options,
                                        config)
                  .status()
                  .IsResourceExhausted());
}

}  // namespace
}  // namespace coursenav

#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "expr/parser.h"

namespace coursenav {
namespace {

Course MakeCourse(std::string code, const char* prereq = nullptr,
                  double workload = 5.0) {
  Course c;
  c.code = std::move(code);
  c.title = "Title of " + c.code;
  c.workload_hours = workload;
  if (prereq != nullptr) {
    auto parsed = expr::ParseBoolExpr(prereq);
    EXPECT_TRUE(parsed.ok()) << prereq;
    c.prerequisites = *parsed;
  }
  return c;
}

TEST(CatalogTest, AddAndFind) {
  Catalog catalog;
  auto id = catalog.AddCourse(MakeCourse("CS1"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0);
  EXPECT_EQ(catalog.size(), 1);
  EXPECT_EQ(*catalog.FindByCode("CS1"), 0);
  EXPECT_EQ(catalog.course(0).code, "CS1");
  EXPECT_TRUE(catalog.FindByCode("CS2").status().IsNotFound());
}

TEST(CatalogTest, RejectsDuplicatesEmptyCodesNegativeWorkload) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("CS1")).ok());
  EXPECT_TRUE(
      catalog.AddCourse(MakeCourse("CS1")).status().IsInvalidArgument());
  EXPECT_TRUE(
      catalog.AddCourse(MakeCourse("")).status().IsInvalidArgument());
  EXPECT_TRUE(catalog.AddCourse(MakeCourse("CS2", nullptr, -1.0))
                  .status()
                  .IsInvalidArgument());
}

TEST(CatalogTest, FinalizeCompilesPrereqs) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("CS1")).ok());
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("CS2", "CS1")).ok());
  ASSERT_TRUE(catalog.Finalize().ok());
  EXPECT_TRUE(catalog.finalized());

  DynamicBitset none = catalog.NewCourseSet();
  DynamicBitset with_cs1 = catalog.NewCourseSet();
  with_cs1.set(*catalog.FindByCode("CS1"));
  EXPECT_TRUE(catalog.compiled_prereq(*catalog.FindByCode("CS1")).Eval(none));
  EXPECT_FALSE(catalog.compiled_prereq(*catalog.FindByCode("CS2")).Eval(none));
  EXPECT_TRUE(
      catalog.compiled_prereq(*catalog.FindByCode("CS2")).Eval(with_cs1));
}

TEST(CatalogTest, FinalizeRejectsUnknownPrereqReference) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("CS2", "GHOST1")).ok());
  Status status = catalog.Finalize();
  EXPECT_TRUE(status.IsFailedPrecondition());
  EXPECT_NE(status.message().find("CS2"), std::string::npos);
}

TEST(CatalogTest, FinalizeRejectsCycles) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("A", "B")).ok());
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("B", "C")).ok());
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("C", "A")).ok());
  EXPECT_TRUE(catalog.Finalize().IsFailedPrecondition());
}

TEST(CatalogTest, SelfLoopIsACycle) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("A", "A")).ok());
  EXPECT_TRUE(catalog.Finalize().IsFailedPrecondition());
}

TEST(CatalogTest, DiamondDependencyIsAcyclic) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("A")).ok());
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("B", "A")).ok());
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("C", "A")).ok());
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("D", "B and C")).ok());
  EXPECT_TRUE(catalog.Finalize().ok());
}

TEST(CatalogTest, NoAddAfterFinalize) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("A")).ok());
  ASSERT_TRUE(catalog.Finalize().ok());
  EXPECT_TRUE(
      catalog.AddCourse(MakeCourse("B")).status().IsFailedPrecondition());
  // Finalize is idempotent.
  EXPECT_TRUE(catalog.Finalize().ok());
}

TEST(CatalogTest, CourseSetFromCodesAndToString) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("A")).ok());
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("B")).ok());
  auto set = catalog.CourseSetFromCodes({"B", "A"});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->count(), 2);
  EXPECT_EQ(catalog.CourseSetToString(*set), "{A, B}");
  EXPECT_TRUE(catalog.CourseSetFromCodes({"Z"}).status().IsNotFound());
}

TEST(CatalogTest, ResolverMapsCodesToIds) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("A")).ok());
  ASSERT_TRUE(catalog.AddCourse(MakeCourse("B")).ok());
  expr::VarResolver resolver = catalog.MakeResolver();
  EXPECT_EQ(*resolver("B"), 1);
  EXPECT_TRUE(resolver("Q").status().IsNotFound());
}

}  // namespace
}  // namespace coursenav

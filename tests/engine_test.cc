#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/enrollment.h"
#include "core/pruning.h"
#include "requirements/expr_goal.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::Figure3Fixture;

TEST(ExplorationEngineTest, AvailableFromIsSuffixUnion) {
  Figure3Fixture fix;
  ExplorationOptions options;
  internal::ExplorationEngine engine(fix.catalog, fix.schedule, options,
                                     fix.fall11, fix.spring13);
  // From Fall'11: everything runs somewhere in [F11, F12].
  EXPECT_EQ(engine.AvailableFrom(fix.fall11).count(), 3);
  // From Spring'12: 21A (S12) plus 11A/29A (F12).
  EXPECT_EQ(engine.AvailableFrom(fix.fall11 + 1).count(), 3);
  // From Fall'12: only 11A and 29A remain.
  EXPECT_EQ(engine.AvailableFrom(fix.fall11 + 2).ToIndices(),
            (std::vector<int>{fix.c11a, fix.c29a}));
  // At or beyond the end: empty.
  EXPECT_TRUE(engine.AvailableFrom(fix.spring13).empty());
  EXPECT_TRUE(engine.AvailableFrom(fix.spring13 + 3).empty());
}

TEST(ExplorationEngineTest, AvailableFromExcludesAvoided) {
  Figure3Fixture fix;
  ExplorationOptions options;
  DynamicBitset avoid = fix.catalog.NewCourseSet();
  avoid.set(fix.c29a);
  options.avoid_courses = avoid;
  internal::ExplorationEngine engine(fix.catalog, fix.schedule, options,
                                     fix.fall11, fix.spring13);
  EXPECT_FALSE(engine.AvailableFrom(fix.fall11).test(fix.c29a));
}

TEST(ExplorationEngineTest, FutureCourseExists) {
  Figure3Fixture fix;
  ExplorationOptions options;
  internal::ExplorationEngine engine(fix.catalog, fix.schedule, options,
                                     fix.fall11, fix.spring13);
  DynamicBitset none = fix.catalog.NewCourseSet();
  // From Fall'11 with nothing done: later semesters still offer courses.
  EXPECT_TRUE(engine.FutureCourseExists(none, fix.fall11));
  // From Fall'12 (the last enrollable semester): nothing later.
  EXPECT_FALSE(engine.FutureCourseExists(none, fix.fall11 + 2));
  // Everything completed: nothing left anywhere.
  DynamicBitset all = fix.catalog.NewCourseSet();
  all.set(fix.c11a);
  all.set(fix.c29a);
  all.set(fix.c21a);
  EXPECT_FALSE(engine.FutureCourseExists(all, fix.fall11));
}

TEST(ComputeOptionsTest, MatchesPaperDefinition) {
  Figure3Fixture fix;
  ExplorationOptions options;
  DynamicBitset none = fix.catalog.NewCourseSet();
  // Y1 = {11A, 29A}: offered Fall'11, no prerequisites.
  EXPECT_EQ(ComputeOptions(fix.catalog, fix.schedule, none, fix.fall11,
                           options)
                .ToIndices(),
            (std::vector<int>{fix.c11a, fix.c29a}));
  // Spring'12 with 11A done: 21A unlocks.
  DynamicBitset with_11a = fix.catalog.NewCourseSet();
  with_11a.set(fix.c11a);
  EXPECT_EQ(ComputeOptions(fix.catalog, fix.schedule, with_11a,
                           fix.fall11 + 1, options)
                .ToIndices(),
            std::vector<int>{fix.c21a});
  // Spring'12 with only 29A done: nothing (paper's n4).
  DynamicBitset with_29a = fix.catalog.NewCourseSet();
  with_29a.set(fix.c29a);
  EXPECT_TRUE(ComputeOptions(fix.catalog, fix.schedule, with_29a,
                             fix.fall11 + 1, options)
                  .empty());
  // Completed courses are never options again.
  EXPECT_EQ(ComputeOptions(fix.catalog, fix.schedule, with_11a, fix.fall11,
                           options)
                .ToIndices(),
            std::vector<int>{fix.c29a});
}

TEST(PruningOracleTest, TimeVerdictMatchesEquationOne) {
  Figure3Fixture fix;
  ExplorationOptions options;
  options.max_courses_per_term = 1;
  Term end = fix.fall11 + 2;
  internal::ExplorationEngine engine(fix.catalog, fix.schedule, options,
                                     fix.fall11, end);
  auto goal = ExprGoal::CompleteAll({"11A", "29A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  GoalDrivenConfig config;
  config.enable_availability_pruning = false;
  internal::PruningOracle oracle(**goal, engine, options, config);

  DynamicBitset none = fix.catalog.NewCourseSet();
  int left = oracle.LeftAt(none);
  EXPECT_EQ(left, 2);
  // Child after taking just 29A at Fall'11 (child at Spring'12, bound =
  // m*(end - child) = 1): left(child) = 1 <= 1 -> keep.
  DynamicBitset just29 = fix.catalog.NewCourseSet();
  just29.set(fix.c29a);
  EXPECT_EQ(oracle.ClassifyChild(just29, 1, fix.fall11 + 1, left),
            internal::PruningOracle::Verdict::kKeep);
  // Skip child (|W| = 0): left stays 2 > 1 -> time-pruned.
  EXPECT_EQ(oracle.ClassifyChild(none, 0, fix.fall11 + 1, left),
            internal::PruningOracle::Verdict::kPrunedTime);
  EXPECT_EQ(engine.metrics().pruned_time, 1);
  // Equation 1's minimum selection size at the root: left - m*(d-s-1) =
  // 2 - 1 = 1.
  EXPECT_EQ(oracle.MinSelectionSize(left, fix.fall11), 1);
}

TEST(PruningOracleTest, AvailabilityVerdict) {
  Figure3Fixture fix;
  ExplorationOptions options;
  Term end = fix.fall11 + 2;  // Fall'12 deadline, as in §4.2.3
  internal::ExplorationEngine engine(fix.catalog, fix.schedule, options,
                                     fix.fall11, end);
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  GoalDrivenConfig config;
  config.enable_time_pruning = false;
  internal::PruningOracle oracle(**goal, engine, options, config);

  // The paper's n4: only 29A completed entering Spring'12; even taking
  // everything offered afterwards misses 11A... actually 11A runs Fall'12,
  // but 21A (Spring'12-only) requires 11A first — the *set* union still
  // contains all three, so availability alone keeps it; the pruned case is
  // a child entering Fall'12 without 21A.
  DynamicBitset missing21 = fix.catalog.NewCourseSet();
  missing21.set(fix.c11a);
  missing21.set(fix.c29a);
  // Child at Fall'12 (last semester): 21A no longer offered -> pruned.
  // (This is not generated by the real run — n3 takes 21A in Spring — but
  // exercises the verdict directly.)
  DynamicBitset at_fall12 = missing21;
  EXPECT_EQ(oracle.ClassifyChild(at_fall12, 2, fix.fall11 + 2, -1),
            internal::PruningOracle::Verdict::kPrunedAvailability);
  EXPECT_EQ(engine.metrics().pruned_availability, 1);
  // Same child entering Spring'12 instead: 21A still ahead -> keep.
  EXPECT_EQ(oracle.ClassifyChild(missing21, 2, fix.fall11 + 1, -1),
            internal::PruningOracle::Verdict::kKeep);
}

TEST(PruningOracleTest, DisabledStrategiesKeepEverything) {
  Figure3Fixture fix;
  ExplorationOptions options;
  internal::ExplorationEngine engine(fix.catalog, fix.schedule, options,
                                     fix.fall11, fix.fall11 + 1);
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  GoalDrivenConfig config;
  config.enable_time_pruning = false;
  config.enable_availability_pruning = false;
  internal::PruningOracle oracle(**goal, engine, options, config);
  DynamicBitset none = fix.catalog.NewCourseSet();
  // Clearly hopeless child, but both strategies are off.
  EXPECT_EQ(oracle.ClassifyChild(none, 0, fix.fall11 + 1, -1),
            internal::PruningOracle::Verdict::kKeep);
  EXPECT_EQ(engine.StatsView().TotalPruned(), 0);
  EXPECT_EQ(oracle.LeftAt(none), -1);
  EXPECT_EQ(oracle.MinSelectionSize(-1, fix.fall11), 1);
}

}  // namespace
}  // namespace coursenav

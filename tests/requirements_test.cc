#include "requirements/degree_requirement.h"

#include <gtest/gtest.h>

#include "expr/parser.h"
#include "requirements/expr_goal.h"
#include "requirements/goal.h"

namespace coursenav {
namespace {

/// A 10-course catalog: C0..C4 "core-ish", C5..C9 "elective-ish".
class RequirementsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 10; ++i) {
      Course c;
      c.code = "C" + std::to_string(i);
      ASSERT_TRUE(catalog_.AddCourse(std::move(c)).ok());
    }
    ASSERT_TRUE(catalog_.Finalize().ok());
  }

  DynamicBitset Bits(std::initializer_list<int> ids) {
    DynamicBitset b(catalog_.size());
    for (int id : ids) b.set(id);
    return b;
  }

  std::vector<std::string> Codes(std::initializer_list<int> ids) {
    std::vector<std::string> out;
    for (int id : ids) out.push_back("C" + std::to_string(id));
    return out;
  }

  Catalog catalog_;
};

TEST_F(RequirementsTest, DisjointGroupsSatisfaction) {
  auto req = DegreeRequirement::Builder(&catalog_)
                 .AddGroup("core", Codes({0, 1, 2}), 2)
                 .AddGroup("elective", Codes({5, 6, 7, 8}), 2)
                 .Build();
  ASSERT_TRUE(req.ok());
  EXPECT_EQ((*req)->TotalSlots(), 4);
  EXPECT_FALSE((*req)->IsSatisfied(Bits({})));
  EXPECT_FALSE((*req)->IsSatisfied(Bits({0, 1, 5})));
  EXPECT_TRUE((*req)->IsSatisfied(Bits({0, 1, 5, 6})));
  // Extra courses beyond the requirement don't hurt.
  EXPECT_TRUE((*req)->IsSatisfied(Bits({0, 1, 2, 5, 6, 7, 9})));
}

TEST_F(RequirementsTest, MinCoursesRemainingCountsSlots) {
  auto req = DegreeRequirement::Builder(&catalog_)
                 .AddGroup("core", Codes({0, 1, 2}), 2)
                 .AddGroup("elective", Codes({5, 6, 7, 8}), 2)
                 .Build();
  ASSERT_TRUE(req.ok());
  EXPECT_EQ((*req)->MinCoursesRemaining(Bits({})), 4);
  EXPECT_EQ((*req)->MinCoursesRemaining(Bits({0})), 3);
  EXPECT_EQ((*req)->MinCoursesRemaining(Bits({0, 1, 2})), 2);  // core capped
  EXPECT_EQ((*req)->MinCoursesRemaining(Bits({0, 1, 5, 6})), 0);
  // Irrelevant courses contribute nothing.
  EXPECT_EQ((*req)->MinCoursesRemaining(Bits({3, 4, 9})), 4);
}

TEST_F(RequirementsTest, OverlappingGroupsUseFlowAllocation) {
  // C2 belongs to both groups but may credit only one.
  auto req = DegreeRequirement::Builder(&catalog_)
                 .AddGroup("a", Codes({0, 1, 2}), 2)
                 .AddGroup("b", Codes({2, 3, 4}), 2)
                 .Build();
  ASSERT_TRUE(req.ok());
  // {0, 2, 3}: 0->a, 2 can go to either, 3->b: credited 3 of 4 slots.
  EXPECT_EQ((*req)->CreditedSlots(Bits({0, 2, 3})), 3);
  EXPECT_FALSE((*req)->IsSatisfied(Bits({0, 2, 3})));
  EXPECT_TRUE((*req)->IsSatisfied(Bits({0, 1, 2, 3})));
  // {1, 2} with group a full would waste 2 on a; flow routes 2 to b.
  EXPECT_EQ((*req)->CreditedSlots(Bits({0, 1, 2, 4})), 4);
  EXPECT_TRUE((*req)->IsSatisfied(Bits({0, 1, 2, 4})));
}

TEST_F(RequirementsTest, FordFulkersonAndDinicAgree) {
  for (FlowAlgorithm algo :
       {FlowAlgorithm::kFordFulkerson, FlowAlgorithm::kDinic}) {
    auto req = DegreeRequirement::Builder(&catalog_)
                   .AddGroup("a", Codes({0, 1, 2, 3}), 3)
                   .AddGroup("b", Codes({2, 3, 4, 5}), 2)
                   .Build(algo);
    ASSERT_TRUE(req.ok());
    EXPECT_EQ((*req)->CreditedSlots(Bits({0, 2, 3, 4})), 4);
    EXPECT_EQ((*req)->MinCoursesRemaining(Bits({0, 2, 3, 4})), 1);
  }
}

TEST_F(RequirementsTest, BuilderValidation) {
  EXPECT_TRUE(DegreeRequirement::Builder(&catalog_)
                  .Build()
                  .status()
                  .IsInvalidArgument());  // no groups
  EXPECT_TRUE(DegreeRequirement::Builder(&catalog_)
                  .AddGroup("g", Codes({0}), 0)
                  .Build()
                  .status()
                  .IsInvalidArgument());  // zero count
  EXPECT_TRUE(DegreeRequirement::Builder(&catalog_)
                  .AddGroup("g", Codes({0, 1}), 3)
                  .Build()
                  .status()
                  .IsInvalidArgument());  // count > group size
  EXPECT_TRUE(DegreeRequirement::Builder(&catalog_)
                  .AddGroup("g", {"NOPE"}, 1)
                  .Build()
                  .status()
                  .IsInvalidArgument());  // unknown course
}

TEST_F(RequirementsTest, AchievableWith) {
  auto req = DegreeRequirement::Builder(&catalog_)
                 .AddGroup("core", Codes({0, 1, 2}), 3)
                 .Build();
  ASSERT_TRUE(req.ok());
  EXPECT_TRUE((*req)->AchievableWith(Bits({0}), Bits({1, 2})));
  EXPECT_FALSE((*req)->AchievableWith(Bits({0}), Bits({1})));
}

TEST_F(RequirementsTest, DegreeRequirementIsMonotone) {
  auto req = DegreeRequirement::Builder(&catalog_)
                 .AddGroup("core", Codes({0, 1}), 1)
                 .Build();
  ASSERT_TRUE(req.ok());
  EXPECT_TRUE((*req)->IsMonotone());
}

TEST_F(RequirementsTest, DescribeMentionsGroups) {
  auto req = DegreeRequirement::Builder(&catalog_)
                 .AddGroup("core", Codes({0, 1, 2}), 2)
                 .Build();
  ASSERT_TRUE(req.ok());
  EXPECT_NE((*req)->Describe().find("2 of 3 core"), std::string::npos);
}

// ------------------------------------------------------------- ExprGoal

TEST_F(RequirementsTest, ExprGoalSatisfaction) {
  auto goal = ExprGoal::Create(*expr::ParseBoolExpr("C0 and (C1 or C2)"),
                               catalog_);
  ASSERT_TRUE(goal.ok());
  EXPECT_FALSE((*goal)->IsSatisfied(Bits({0})));
  EXPECT_TRUE((*goal)->IsSatisfied(Bits({0, 2})));
  EXPECT_EQ((*goal)->MinCoursesRemaining(Bits({})), 2);
  EXPECT_EQ((*goal)->MinCoursesRemaining(Bits({1})), 1);
  EXPECT_TRUE((*goal)->AchievableWith(Bits({}), Bits({0, 1})));
  EXPECT_FALSE((*goal)->AchievableWith(Bits({}), Bits({1, 2})));
}

TEST_F(RequirementsTest, ExprGoalCompleteAll) {
  auto goal = ExprGoal::CompleteAll(Codes({0, 5, 9}), catalog_);
  ASSERT_TRUE(goal.ok());
  EXPECT_TRUE((*goal)->IsSatisfied(Bits({0, 5, 9})));
  EXPECT_FALSE((*goal)->IsSatisfied(Bits({0, 5})));
  EXPECT_EQ((*goal)->MinCoursesRemaining(Bits({0})), 2);
  EXPECT_TRUE((*goal)->IsMonotone());
}

TEST_F(RequirementsTest, ExprGoalWithNegationNotMonotone) {
  auto goal = ExprGoal::Create(*expr::ParseBoolExpr("C0 and not C1"),
                               catalog_);
  ASSERT_TRUE(goal.ok());
  EXPECT_FALSE((*goal)->IsMonotone());
  EXPECT_TRUE((*goal)->IsSatisfied(Bits({0})));
  EXPECT_FALSE((*goal)->IsSatisfied(Bits({0, 1})));
  EXPECT_EQ((*goal)->MinCoursesRemaining(Bits({1})), kGoalUnreachable);
}

TEST_F(RequirementsTest, ExprGoalRejectsUnknownCourse) {
  auto goal = ExprGoal::Create(*expr::ParseBoolExpr("GHOST1"), catalog_);
  EXPECT_FALSE(goal.ok());
}

// -------------------------------------------------------- CompositeGoal

TEST_F(RequirementsTest, CompositeGoalCombines) {
  auto part1 = ExprGoal::CompleteAll(Codes({0, 1}), catalog_);
  auto part2 = ExprGoal::CompleteAll(Codes({1, 2}), catalog_);
  ASSERT_TRUE(part1.ok() && part2.ok());
  CompositeGoal both({*part1, *part2});
  EXPECT_FALSE(both.IsSatisfied(Bits({0, 1})));
  EXPECT_TRUE(both.IsSatisfied(Bits({0, 1, 2})));
  // Max of parts: part2 needs 2 from scratch.
  EXPECT_EQ(both.MinCoursesRemaining(Bits({})), 2);
  EXPECT_TRUE(both.IsMonotone());
  EXPECT_TRUE(both.AchievableWith(Bits({}), Bits({0, 1, 2})));
  EXPECT_FALSE(both.AchievableWith(Bits({}), Bits({0, 1})));
  EXPECT_NE(both.Describe().find("all of"), std::string::npos);
}


// ---------------------------------------------------------- DegreeAudit

TEST_F(RequirementsTest, AuditReportsPerGroupProgress) {
  auto req = DegreeRequirement::Builder(&catalog_)
                 .AddGroup("core", Codes({0, 1, 2}), 2)
                 .AddGroup("elective", Codes({5, 6, 7}), 2)
                 .Build();
  ASSERT_TRUE(req.ok());
  DegreeAudit audit = (*req)->Audit(Bits({0, 5}));
  ASSERT_EQ(audit.groups.size(), 2u);
  EXPECT_FALSE(audit.satisfied);
  EXPECT_EQ(audit.courses_missing, 2);
  EXPECT_EQ(audit.groups[0].credited_count(), 1);
  EXPECT_EQ(audit.groups[0].missing_count(), 1);
  EXPECT_TRUE(audit.groups[0].credited.test(0));
  // Candidates exclude completed courses.
  EXPECT_FALSE(audit.groups[1].remaining_candidates.test(5));
  EXPECT_TRUE(audit.groups[1].remaining_candidates.test(6));
}

TEST_F(RequirementsTest, AuditAllocatesOverlapOptimally) {
  // C2 in both groups; completed {0, 1, 2, 4}: the only full allocation
  // credits 2 to group b.
  auto req = DegreeRequirement::Builder(&catalog_)
                 .AddGroup("a", Codes({0, 1, 2}), 2)
                 .AddGroup("b", Codes({2, 3, 4}), 2)
                 .Build();
  ASSERT_TRUE(req.ok());
  DegreeAudit audit = (*req)->Audit(Bits({0, 1, 2, 4}));
  EXPECT_TRUE(audit.satisfied);
  EXPECT_EQ(audit.courses_missing, 0);
  // C2 must be credited to b (a is full with 0 and 1).
  EXPECT_TRUE(audit.groups[1].credited.test(2));
  EXPECT_FALSE(audit.groups[0].credited.test(2));
}

TEST_F(RequirementsTest, AuditSatisfiedRendering) {
  auto req = DegreeRequirement::Builder(&catalog_)
                 .AddGroup("core", Codes({0, 1}), 1)
                 .Build();
  ASSERT_TRUE(req.ok());
  DegreeAudit done = (*req)->Audit(Bits({0}));
  EXPECT_TRUE(done.satisfied);
  std::string text = done.ToString(catalog_);
  EXPECT_NE(text.find("core: 1/1"), std::string::npos);
  EXPECT_NE(text.find("requirement satisfied"), std::string::npos);
  DegreeAudit missing = (*req)->Audit(Bits({}));
  EXPECT_NE(missing.ToString(catalog_).find("still needed"),
            std::string::npos);
}

}  // namespace
}  // namespace coursenav

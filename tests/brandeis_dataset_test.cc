#include "data/brandeis_cs.h"

#include <gtest/gtest.h>

#include "core/goal_generator.h"
#include "core/ranked_generator.h"
#include "data/synthetic.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::GoalPaths;

class BrandeisDatasetTest : public ::testing::Test {
 protected:
  data::BrandeisDataset dataset_ = data::BuildBrandeisDataset();
};

TEST_F(BrandeisDatasetTest, HasPaperDimensions) {
  // 38 CS courses: 7 core + 31 electives, like the paper's evaluation set.
  EXPECT_EQ(dataset_.catalog.size(), 38);
  EXPECT_EQ(dataset_.core_codes.size(), 7u);
  EXPECT_EQ(dataset_.elective_codes.size(), 31u);
  EXPECT_TRUE(dataset_.catalog.finalized());
  EXPECT_EQ(dataset_.cs_major->TotalSlots(), 12);  // 7 core + 5 electives
  EXPECT_EQ(dataset_.first_term, Term(Season::kFall, 2011));
  EXPECT_EQ(dataset_.last_term, Term(Season::kFall, 2015));
}

TEST_F(BrandeisDatasetTest, EveryCourseIsOfferedSomewhere) {
  for (CourseId id = 0; id < dataset_.catalog.size(); ++id) {
    EXPECT_FALSE(dataset_.schedule.OfferingTerms(id).empty())
        << dataset_.catalog.course(id).code;
  }
}

TEST_F(BrandeisDatasetTest, IntroCoursesRunEveryTerm) {
  CourseId intro = *dataset_.catalog.FindByCode("COSI11A");
  for (Term t = dataset_.first_term; t <= dataset_.last_term; t = t.Next()) {
    EXPECT_TRUE(dataset_.schedule.IsOffered(intro, t)) << t.ToString();
  }
}

TEST_F(BrandeisDatasetTest, StartTermForSpanMatchesPaperWindow) {
  // The paper's Fall'12 -> Fall'15 period is the 6-semester row.
  EXPECT_EQ(data::StartTermForSpan(6), Term(Season::kFall, 2012));
  EXPECT_EQ(data::StartTermForSpan(4), Term(Season::kFall, 2013));
  EXPECT_EQ(data::EvaluationEndTerm(), Term(Season::kFall, 2015));
}

TEST_F(BrandeisDatasetTest, MajorFeasibleInFourSemesters) {
  // The tightest span of the paper's Table 1/2 must admit goal paths.
  ExplorationOptions options;
  EnrollmentStatus start{data::StartTermForSpan(4),
                         dataset_.catalog.NewCourseSet()};
  auto result = GenerateGoalDrivenPaths(dataset_.catalog, dataset_.schedule,
                                        start, data::EvaluationEndTerm(),
                                        *dataset_.cs_major, options);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->termination.ok());
  EXPECT_GT(result->stats.goal_paths, 0);
  // Pruning must be doing real work on this dataset.
  EXPECT_GT(result->stats.pruned_time, 0);
  EXPECT_GT(result->stats.pruned_availability, 0);
  // Spot-check path validity on a few goal paths.
  std::vector<LearningPath> paths = GoalPaths(result->graph);
  for (size_t i = 0; i < paths.size() && i < 25; ++i) {
    EXPECT_TRUE(paths[i].Validate(dataset_.catalog, dataset_.schedule).ok());
    EXPECT_TRUE(dataset_.cs_major->IsSatisfied(paths[i].FinalCompleted()));
    EXPECT_EQ(paths[i].FinalCompleted().count(), 12);  // exactly fits 4x3
  }
}

TEST_F(BrandeisDatasetTest, ShortestPathToMajorIsFourSemesters) {
  ExplorationOptions options;
  EnrollmentStatus start{data::StartTermForSpan(5),
                         dataset_.catalog.NewCourseSet()};
  TimeRanking ranking;
  auto result = GenerateRankedPaths(dataset_.catalog, dataset_.schedule,
                                    start, data::EvaluationEndTerm(),
                                    *dataset_.cs_major, ranking, /*k=*/1,
                                    options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->paths.size(), 1u);
  // From a Spring start the 11A -> 21A -> 21B -> 35A chain cannot finish
  // before Spring'15 (35A runs Spring only), so the optimum is 5 semesters
  // even though 12 courses fit in 4 — exactly the kind of schedule
  // constraint the paper's system surfaces.
  EXPECT_EQ(result->paths[0].Length(), 5);
}

TEST_F(BrandeisDatasetTest, DeterministicConstruction) {
  data::BrandeisDataset second = data::BuildBrandeisDataset();
  EXPECT_EQ(second.catalog.size(), dataset_.catalog.size());
  for (CourseId id = 0; id < dataset_.catalog.size(); ++id) {
    EXPECT_EQ(second.catalog.course(id).code,
              dataset_.catalog.course(id).code);
    EXPECT_EQ(second.schedule.OfferingTerms(id),
              dataset_.schedule.OfferingTerms(id));
  }
}

// ------------------------------------------------------------ synthetic

TEST(SyntheticCatalogTest, RespectsConfig) {
  data::SyntheticConfig config;
  config.num_courses = 20;
  config.num_intro_courses = 4;
  config.seed = 77;
  auto bundle = data::BuildSyntheticCatalog(config);
  ASSERT_TRUE(bundle.ok());
  EXPECT_EQ(bundle->catalog.size(), 20);
  EXPECT_TRUE(bundle->catalog.finalized());
  // Intro courses have no prerequisites and run every semester.
  for (int i = 0; i < config.num_intro_courses; ++i) {
    EXPECT_TRUE(bundle->catalog.compiled_prereq(i).IsAlwaysTrue());
    for (Term t = config.first_term; t <= config.last_term; t = t.Next()) {
      EXPECT_TRUE(bundle->schedule.IsOffered(i, t));
    }
  }
}

TEST(SyntheticCatalogTest, DeterministicPerSeed) {
  data::SyntheticConfig config;
  config.seed = 123;
  auto a = data::BuildSyntheticCatalog(config);
  auto b = data::BuildSyntheticCatalog(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (CourseId id = 0; id < a->catalog.size(); ++id) {
    EXPECT_EQ(a->catalog.course(id).prerequisites.ToString(),
              b->catalog.course(id).prerequisites.ToString());
    EXPECT_EQ(a->schedule.OfferingTerms(id), b->schedule.OfferingTerms(id));
  }
  config.seed = 124;
  auto c = data::BuildSyntheticCatalog(config);
  ASSERT_TRUE(c.ok());
  bool any_difference = false;
  for (CourseId id = 0; id < a->catalog.size(); ++id) {
    if (!(a->schedule.OfferingTerms(id) == c->schedule.OfferingTerms(id))) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(SyntheticCatalogTest, ValidatesConfig) {
  data::SyntheticConfig config;
  config.num_courses = 0;
  EXPECT_TRUE(
      data::BuildSyntheticCatalog(config).status().IsInvalidArgument());
  config = data::SyntheticConfig();
  config.num_intro_courses = 99;
  EXPECT_TRUE(
      data::BuildSyntheticCatalog(config).status().IsInvalidArgument());
  config = data::SyntheticConfig();
  config.num_layers = 0;
  EXPECT_TRUE(
      data::BuildSyntheticCatalog(config).status().IsInvalidArgument());
}

}  // namespace
}  // namespace coursenav

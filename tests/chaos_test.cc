// Deterministic chaos tests: sweep fault-injection seeds over the
// exploration stack and assert every outcome is a valid result, a
// well-formed degraded result, or a clean Status error — never a crash, a
// hang, or a half-written structure. Failures replay from their seed alone.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/counting.h"
#include "core/goal_generator.h"
#include "data/brandeis_cs.h"
#include "obs/metrics.h"
#include "service/degradation.h"
#include "service/session.h"
#include "tests/test_util.h"
#include "util/cancellation.h"
#include "util/fault_injection.h"

namespace coursenav {
namespace {

FaultConfig ChaosConfig(uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.site_probability[std::string(kFaultSiteGraphAlloc)] = 0.02;
  config.site_probability[std::string(kFaultSiteCountAlloc)] = 0.02;
  config.site_probability[std::string(kFaultSiteClockSkew)] = 0.05;
  config.site_probability[std::string(kFaultSiteScheduleChurn)] = 0.01;
  config.clock_skew_seconds = 0.01;
  return config;
}

bool IsCleanOutcome(const Status& status) {
  return status.ok() || status.IsResourceExhausted() ||
         status.IsDeadlineExceeded();
}

TEST(FaultInjectorTest, DecisionsAreDeterministicInTheSeed) {
  std::vector<bool> first, second;
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector(ChaosConfig(42));
    std::vector<bool>& out = (run == 0) ? first : second;
    for (int i = 0; i < 1000; ++i) {
      out.push_back(injector.ShouldInject(kFaultSiteGraphAlloc));
      out.push_back(injector.ShouldInject(kFaultSiteClockSkew));
    }
  }
  EXPECT_EQ(first, second);
  // And different seeds produce different patterns.
  FaultInjector other(ChaosConfig(43));
  std::vector<bool> third;
  for (int i = 0; i < 1000; ++i) {
    third.push_back(other.ShouldInject(kFaultSiteGraphAlloc));
    third.push_back(other.ShouldInject(kFaultSiteClockSkew));
  }
  EXPECT_NE(first, third);
}

TEST(FaultInjectorTest, ProbabilityEndpointsAreExact) {
  FaultConfig config;
  config.seed = 7;
  config.site_probability["always"] = 1.0;
  config.site_probability["never"] = 0.0;
  FaultInjector injector(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.ShouldInject("always"));
    EXPECT_FALSE(injector.ShouldInject("never"));
    EXPECT_FALSE(injector.ShouldInject("unconfigured/site"));
  }
  EXPECT_EQ(injector.decisions("always"), 100);
  EXPECT_EQ(injector.fired("always"), 100);
  EXPECT_EQ(injector.fired("never"), 0);
}

TEST(FaultInjectorTest, FiringRateTracksProbability) {
  FaultConfig config;
  config.seed = 99;
  config.site_probability["coin"] = 0.5;
  FaultInjector injector(config);
  for (int i = 0; i < 10000; ++i) (void)injector.ShouldInject("coin");
  // A fair deterministic hash should land well inside [0.45, 0.55].
  EXPECT_GT(injector.fired("coin"), 4500);
  EXPECT_LT(injector.fired("coin"), 5500);
}

TEST(FaultInjectorTest, ScopedInjectionInstallsAndRestores) {
  EXPECT_EQ(ActiveFaultInjector(), nullptr);
  {
    ScopedFaultInjection outer(ChaosConfig(1));
    EXPECT_EQ(ActiveFaultInjector(), &outer.injector());
    {
      ScopedFaultInjection inner(ChaosConfig(2));
      EXPECT_EQ(ActiveFaultInjector(), &inner.injector());
    }
    EXPECT_EQ(ActiveFaultInjector(), &outer.injector());
  }
  EXPECT_EQ(ActiveFaultInjector(), nullptr);
}

TEST(FaultInjectorTest, ClockSkewAcceleratesDeadlines) {
  FaultConfig config;
  config.seed = 5;
  config.site_probability[std::string(kFaultSiteClockSkew)] = 1.0;
  config.clock_skew_seconds = 1000.0;
  ScopedFaultInjection scope(config);
  DeadlineBudget budget(/*max_seconds=*/100.0);
  // The first forced check injects 1000s of perceived elapsed time, blowing
  // the 100s deadline instantly.
  EXPECT_TRUE(budget.CheckNow().IsDeadlineExceeded());
}

// The acceptance sweep: 200 seeds across generation, counting, degradation,
// and session interaction, all with faults armed. Every seed must produce a
// structurally sound outcome.
TEST(ChaosTest, TwoHundredSeedSweep) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();
  EnrollmentStatus start{data::StartTermForSpan(4),
                         dataset.catalog.NewCourseSet()};

  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ScopedFaultInjection scope(ChaosConfig(seed));

    ExplorationOptions options;
    options.limits.max_nodes = 2000;
    options.limits.max_seconds = 0.05;

    // Generation: ok() with a clean termination and a well-formed graph.
    auto generated = GenerateGoalDrivenPaths(dataset.catalog,
                                             dataset.schedule, start, end,
                                             *dataset.cs_major, options);
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    EXPECT_TRUE(IsCleanOutcome(generated->termination))
        << generated->termination.ToString();
    ASSERT_EQ(testing_util::StructureErrors(generated->graph), "");
    ASSERT_EQ(testing_util::StatsErrors(generated->graph, generated->stats),
              "");

    // Counting: a count or a clean budget error, nothing else.
    auto counted = CountGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                        start, end, *dataset.cs_major,
                                        options);
    EXPECT_TRUE(IsCleanOutcome(counted.status()))
        << counted.status().ToString();

    // Degradation: a served response with a coherent report, or a clean
    // budget error when even the last rung dies.
    CourseNavigator navigator(&dataset.catalog, &dataset.schedule);
    ExplorationRequest request;
    request.start = start;
    request.end_term = end;
    request.type = TaskType::kGoalDriven;
    request.goal = dataset.cs_major;
    request.options = options;
    auto degraded = ExploreWithDegradation(navigator, request);
    if (degraded.ok()) {
      EXPECT_FALSE(degraded->report.rungs.empty());
      EXPECT_TRUE(degraded->response.generation.has_value() ||
                  degraded->response.ranked.has_value() ||
                  degraded->count.has_value());
      if (degraded->response.generation.has_value()) {
        EXPECT_EQ(
            testing_util::StructureErrors(degraded->response.generation->graph),
            "");
      }
    } else {
      EXPECT_TRUE(IsCleanOutcome(degraded.status()))
          << degraded.status().ToString();
    }
  }
}

// Schedule churn perturbs the offerings a session sees; its command surface
// must keep returning clean statuses and never corrupt session state.
TEST(ChaosTest, SessionSurvivesScheduleChurn) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  for (uint64_t seed = 0; seed < 50; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    FaultConfig config;
    config.seed = seed;
    config.site_probability[std::string(kFaultSiteScheduleChurn)] = 0.3;
    ScopedFaultInjection scope(config);

    ExplorationOptions options;
    options.limits.max_nodes = 2000;
    options.limits.max_seconds = 0.05;
    ExplorationSession session(&dataset.catalog, &dataset.schedule,
                               dataset.cs_major,
                               {data::StartTermForSpan(4),
                                dataset.catalog.NewCourseSet()},
                               data::EvaluationEndTerm(), options);

    DynamicBitset electable = session.CurrentOptions();
    EXPECT_LE(electable.count(), dataset.catalog.size());

    // Commit whatever churn left electable; under churn the selection may
    // be rejected — that must be a clean InvalidArgument, not a crash.
    std::vector<std::string> codes;
    electable.ForEach([&](int id) {
      if (codes.size() < 2) codes.push_back(dataset.catalog.course(id).code);
    });
    if (!codes.empty()) {
      Status committed = session.Commit(codes);
      EXPECT_TRUE(committed.ok() || committed.IsInvalidArgument())
          << committed.ToString();
      if (committed.ok()) {
        EXPECT_TRUE(session.Undo().ok());
      }
    }

    auto remaining = session.RemainingGoalPaths();
    EXPECT_TRUE(IsCleanOutcome(remaining.status()))
        << remaining.status().ToString();
  }
}

// The graph-allocation seam must leave the arena well-formed: the failing
// node is still materialized, and the generator stops at its next check.
TEST(ChaosTest, AllocationFaultsYieldResourceExhaustedPartialGraphs) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  FaultConfig config;
  config.seed = 11;
  config.site_probability[std::string(kFaultSiteGraphAlloc)] = 1.0;
  ScopedFaultInjection scope(config);

  ExplorationOptions options;
  EnrollmentStatus start{data::StartTermForSpan(6),
                         dataset.catalog.NewCourseSet()};
  auto result = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                        start, data::EvaluationEndTerm(),
                                        *dataset.cs_major, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->termination.IsResourceExhausted())
      << result->termination.ToString();
  EXPECT_NE(result->termination.message().find("fault injection"),
            std::string::npos);
  EXPECT_EQ(testing_util::StructureErrors(result->graph), "");
}

// The metrics registry's contract under fire: interning from many threads
// hands back the same slot, updates through the handles are lock-free and
// lossless, and snapshots taken mid-churn never tear (asan/ubsan runs of
// this test are the real assertion for the memory model).
TEST(ChaosTest, MetricRegistrySurvivesConcurrentChurn) {
  obs::MetricRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 2'000;
  // A name pool wide enough to force interleaved interning and deque
  // growth, narrow enough that every thread hits every name.
  const std::vector<std::string> names = {"alpha_total", "beta_total",
                                          "gamma_total", "delta_total",
                                          "epsilon_total"};

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const obs::MetricSnapshot& snapshot : registry.Snapshot()) {
        // Values only ever grow; a torn read would trip asan/ubsan or
        // produce garbage counts far above the final total.
        EXPECT_GE(snapshot.value, 0);
      }
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &names, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::string& name = names[static_cast<size_t>(
            (t + i) % static_cast<int>(names.size()))];
        registry.GetCounter(name)->Increment();
        registry.GetGauge(name)->UpdateMax(i);
        registry.GetHistogram(name)->Observe(i);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  // Exactly-once accounting: every increment landed somewhere, none twice.
  int64_t total_counts = 0;
  int64_t total_observations = 0;
  for (const std::string& name : names) {
    total_counts += registry.GetCounter(name)->Value();
    total_observations += registry.GetHistogram(name)->Count();
    EXPECT_EQ(registry.GetGauge(name)->Value(), kIterations - 1);
  }
  EXPECT_EQ(total_counts, int64_t{kThreads} * kIterations);
  EXPECT_EQ(total_observations, int64_t{kThreads} * kIterations);

  // Folding the churned registry into another preserves the exact totals.
  obs::MetricRegistry global;
  registry.AccumulateInto(&global);
  int64_t folded = 0;
  for (const std::string& name : names) {
    folded += global.GetCounter(name)->Value();
  }
  EXPECT_EQ(folded, int64_t{kThreads} * kIterations);
}

}  // namespace
}  // namespace coursenav

// The planner/executor pipeline's contracts (ctest label `plan`):
//
//  - Golden equivalence: the legacy Generate*Paths facades and a request
//    run directly through Planner::Lower + Executor::Run produce
//    field-by-field identical graphs, stats, and path order — on the
//    Figure 3 fixture and the Brandeis catalog, at 0/1/4 threads.
//  - Plan shape: each task type lowers to its documented operator chain,
//    and the serial/parallel decision is made by the planner alone.
//  - The ranked-serial note: a ranked request asking for threads gets an
//    explicit plan note instead of a silent ignore.
//  - JSON round-trip: ExplorationRequestFromJson/ToJson are lossless for
//    declarative requests, and ToJson refuses in-memory-only requests.
//  - Degradation rewrites: each ladder rung is a plan rewrite with the
//    service ladder's historical applicability errors.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/deadline_generator.h"
#include "core/goal_generator.h"
#include "core/ranked_generator.h"
#include "core/ranking.h"
#include "data/brandeis_cs.h"
#include "expr/parser.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "plan/request.h"
#include "requirements/expr_goal.h"
#include "tests/test_util.h"
#include "util/json.h"

namespace coursenav {
namespace {

using testing_util::GraphDifference;
using testing_util::StatsDifference;

const std::vector<int> kThreadCounts = {0, 1, 4};

std::shared_ptr<const Goal> MakeExprGoal(const std::string& spec,
                                         const Catalog& catalog) {
  auto parsed = expr::ParseBoolExpr(spec);
  if (!parsed.ok()) std::abort();
  auto goal = ExprGoal::Create(*parsed, catalog);
  if (!goal.ok()) std::abort();
  return *goal;
}

/// Runs `request` straight through the pipeline (no facade) and returns
/// the response.
ExplorationResponse RunDirect(const Catalog& catalog,
                              const OfferingSchedule& schedule,
                              const ExplorationRequest& request) {
  auto lowered = plan::Planner::Lower(request);
  EXPECT_TRUE(lowered.ok()) << lowered.status().ToString();
  plan::Executor executor(&catalog, &schedule);
  auto response = executor.Run(*lowered);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
  return std::move(*response);
}

// ---------------------------------------------------------------------------
// Golden equivalence: facade vs direct pipeline execution.
// ---------------------------------------------------------------------------

TEST(PlanGoldenTest, DeadlineFacadeMatchesPipelineOnFigure3) {
  testing_util::Figure3Fixture fixture;
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExplorationOptions options;
    options.num_threads = threads;
    auto facade = GenerateDeadlineDrivenPaths(fixture.catalog,
                                              fixture.schedule,
                                              fixture.FreshStudent(),
                                              fixture.spring13, options);
    ASSERT_TRUE(facade.ok()) << facade.status().ToString();

    ExplorationRequest request;
    request.start = fixture.FreshStudent();
    request.end_term = fixture.spring13;
    request.type = TaskType::kDeadlineDriven;
    request.options = options;
    ExplorationResponse direct =
        RunDirect(fixture.catalog, fixture.schedule, request);
    ASSERT_TRUE(direct.generation.has_value());
    EXPECT_EQ(GraphDifference(facade->graph, direct.generation->graph), "");
    EXPECT_EQ(StatsDifference(facade->stats, direct.generation->stats), "");
    EXPECT_EQ(facade->termination.ToString(),
              direct.generation->termination.ToString());
  }
}

TEST(PlanGoldenTest, GoalFacadeMatchesPipelineOnFigure3) {
  testing_util::Figure3Fixture fixture;
  std::shared_ptr<const Goal> goal =
      MakeExprGoal("11A and 21A", fixture.catalog);
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExplorationOptions options;
    options.num_threads = threads;
    auto facade = GenerateGoalDrivenPaths(fixture.catalog, fixture.schedule,
                                          fixture.FreshStudent(),
                                          fixture.spring13, *goal, options);
    ASSERT_TRUE(facade.ok()) << facade.status().ToString();

    ExplorationRequest request;
    request.start = fixture.FreshStudent();
    request.end_term = fixture.spring13;
    request.type = TaskType::kGoalDriven;
    request.goal = goal;
    request.options = options;
    ExplorationResponse direct =
        RunDirect(fixture.catalog, fixture.schedule, request);
    ASSERT_TRUE(direct.generation.has_value());
    EXPECT_EQ(GraphDifference(facade->graph, direct.generation->graph), "");
    EXPECT_EQ(StatsDifference(facade->stats, direct.generation->stats), "");
  }
}

TEST(PlanGoldenTest, GoalFacadeMatchesPipelineOnBrandeisCatalog) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  EnrollmentStatus start{data::StartTermForSpan(5),
                         dataset.catalog.NewCourseSet()};
  Term end = data::EvaluationEndTerm();
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExplorationOptions options;
    options.num_threads = threads;
    auto facade =
        GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule, start, end,
                                *dataset.cs_major, options);
    ASSERT_TRUE(facade.ok()) << facade.status().ToString();

    ExplorationRequest request;
    request.start = start;
    request.end_term = end;
    request.type = TaskType::kGoalDriven;
    request.goal = dataset.cs_major;
    request.options = options;
    ExplorationResponse direct =
        RunDirect(dataset.catalog, dataset.schedule, request);
    ASSERT_TRUE(direct.generation.has_value());
    EXPECT_EQ(GraphDifference(facade->graph, direct.generation->graph), "");
    EXPECT_EQ(StatsDifference(facade->stats, direct.generation->stats), "");
  }
}

TEST(PlanGoldenTest, RankedFacadeMatchesPipelinePathOrder) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  EnrollmentStatus start{data::StartTermForSpan(5),
                         dataset.catalog.NewCourseSet()};
  Term end = data::EvaluationEndTerm();
  TimeRanking ranking;
  // Thread counts included on purpose: ranked runs serial at any setting,
  // and the emitted path order must not depend on it.
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExplorationOptions options;
    options.num_threads = threads;
    auto facade =
        GenerateRankedPaths(dataset.catalog, dataset.schedule, start, end,
                            *dataset.cs_major, ranking, 5, options);
    ASSERT_TRUE(facade.ok()) << facade.status().ToString();

    ExplorationRequest request;
    request.start = start;
    request.end_term = end;
    request.type = TaskType::kRanked;
    request.goal = dataset.cs_major;
    request.ranking = std::shared_ptr<const RankingFunction>(
        std::shared_ptr<const RankingFunction>(), &ranking);
    request.top_k = 5;
    request.options = options;
    ExplorationResponse direct =
        RunDirect(dataset.catalog, dataset.schedule, request);
    ASSERT_TRUE(direct.ranked.has_value());

    ASSERT_EQ(facade->paths.size(), direct.ranked->paths.size());
    for (size_t i = 0; i < facade->paths.size(); ++i) {
      SCOPED_TRACE("path " + std::to_string(i));
      EXPECT_TRUE(facade->paths[i] == direct.ranked->paths[i]);
    }
    EXPECT_EQ(StatsDifference(facade->stats, direct.ranked->stats), "");
    EXPECT_EQ(facade->termination.ToString(),
              direct.ranked->termination.ToString());
  }
}

// ---------------------------------------------------------------------------
// Plan shape and the serial/parallel decision.
// ---------------------------------------------------------------------------

std::vector<plan::OperatorKind> Kinds(const plan::ExplorationPlan& plan) {
  std::vector<plan::OperatorKind> kinds;
  for (const plan::PlanOperator& op : plan.ops) kinds.push_back(op.kind);
  return kinds;
}

TEST(PlannerTest, DeadlinePlanIsSourceExpand) {
  testing_util::Figure3Fixture fixture;
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  auto plan = plan::Planner::Lower(request);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(Kinds(*plan),
            (std::vector<plan::OperatorKind>{plan::OperatorKind::kSource,
                                             plan::OperatorKind::kExpand}));
  EXPECT_FALSE(plan->parallel);
  EXPECT_TRUE(plan->notes.empty());
}

TEST(PlannerTest, ThreadedDeadlinePlanIsParallel) {
  testing_util::Figure3Fixture fixture;
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  request.options.num_threads = 4;
  auto plan = plan::Planner::Lower(request);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->parallel);
  EXPECT_EQ(plan->workers, 4);
}

TEST(PlannerTest, GoalPlanAddsPrune) {
  testing_util::Figure3Fixture fixture;
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  request.type = TaskType::kGoalDriven;
  request.goal = MakeExprGoal("11A", fixture.catalog);
  auto plan = plan::Planner::Lower(request);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(Kinds(*plan),
            (std::vector<plan::OperatorKind>{plan::OperatorKind::kSource,
                                             plan::OperatorKind::kExpand,
                                             plan::OperatorKind::kPrune}));
}

TEST(PlannerTest, RankedPlanWithFiltersHasFullChain) {
  testing_util::Figure3Fixture fixture;
  TimeRanking ranking;
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  request.type = TaskType::kRanked;
  request.goal = MakeExprGoal("11A", fixture.catalog);
  request.ranking = std::shared_ptr<const RankingFunction>(
      std::shared_ptr<const RankingFunction>(), &ranking);
  request.top_k = 3;
  request.filters.max_skips = 0;
  auto plan = plan::Planner::Lower(request);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(Kinds(*plan),
            (std::vector<plan::OperatorKind>{
                plan::OperatorKind::kSource, plan::OperatorKind::kExpand,
                plan::OperatorKind::kPrune, plan::OperatorKind::kRank,
                plan::OperatorKind::kLimit, plan::OperatorKind::kFilter}));
  std::string description = plan->Describe();
  EXPECT_NE(description.find("Rank(ranking=time)"), std::string::npos);
  EXPECT_NE(description.find("Limit(k=3)"), std::string::npos);
}

/// The pinning test for the old silent-ignore bug: a ranked request with
/// num_threads set must produce a serial plan carrying an explicit note,
/// not silently drop the setting.
TEST(PlannerTest, RankedPlanNotesIgnoredThreads) {
  testing_util::Figure3Fixture fixture;
  TimeRanking ranking;
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  request.type = TaskType::kRanked;
  request.goal = MakeExprGoal("11A", fixture.catalog);
  request.ranking = std::shared_ptr<const RankingFunction>(
      std::shared_ptr<const RankingFunction>(), &ranking);
  request.options.num_threads = 4;
  auto plan = plan::Planner::Lower(request);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->parallel);
  ASSERT_EQ(plan->notes.size(), 1u);
  EXPECT_NE(plan->notes[0].find("ranked runs serial"), std::string::npos);
  EXPECT_NE(plan->notes[0].find("num_threads=4"), std::string::npos);
  EXPECT_NE(plan->Describe().find("ranked runs serial"), std::string::npos);

  // Without threads there is nothing to note.
  request.options.num_threads = 0;
  auto quiet = plan::Planner::Lower(request);
  ASSERT_TRUE(quiet.ok());
  EXPECT_TRUE(quiet->notes.empty());
}

TEST(PlannerTest, StructuralErrorsMatchLegacyMessages) {
  testing_util::Figure3Fixture fixture;
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;

  request.type = TaskType::kGoalDriven;
  auto no_goal = plan::Planner::Lower(request);
  ASSERT_FALSE(no_goal.ok());
  EXPECT_EQ(no_goal.status().message(),
            "goal-driven exploration requires a goal");

  request.type = TaskType::kRanked;
  auto ranked_no_goal = plan::Planner::Lower(request);
  ASSERT_FALSE(ranked_no_goal.ok());
  EXPECT_EQ(ranked_no_goal.status().message(),
            "ranked exploration requires a goal");

  request.goal = MakeExprGoal("11A", fixture.catalog);
  auto no_ranking = plan::Planner::Lower(request);
  ASSERT_FALSE(no_ranking.ok());
  EXPECT_EQ(no_ranking.status().message(),
            "ranked exploration requires a ranking function");
}

TEST(ExecutorTest, PreservesLegacyErrorOrder) {
  testing_util::Figure3Fixture fixture;
  TimeRanking ranking;
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  request.type = TaskType::kRanked;
  request.goal = MakeExprGoal("11A", fixture.catalog);
  request.ranking = std::shared_ptr<const RankingFunction>(
      std::shared_ptr<const RankingFunction>(), &ranking);

  // Window errors surface before the k check, as the ranked generator
  // always reported them.
  request.top_k = 0;
  request.end_term = fixture.fall11;
  auto window = plan::Execute(fixture.catalog, fixture.schedule, request);
  ASSERT_FALSE(window.ok());
  EXPECT_EQ(window.status().message(),
            "end semester must be after the start");

  request.end_term = fixture.spring13;
  auto bad_k = plan::Execute(fixture.catalog, fixture.schedule, request);
  ASSERT_FALSE(bad_k.ok());
  EXPECT_EQ(bad_k.status().message(), "k must be >= 1");
}

// ---------------------------------------------------------------------------
// JSON round-trip.
// ---------------------------------------------------------------------------

constexpr const char* kRequestDocument = R"json({
  "start": {"term": "Fall 2011", "completed": ["29A"]},
  "end_term": "Spring 2013",
  "type": "ranked",
  "goal": "11A and 21A",
  "ranking": "time",
  "top_k": 4,
  "options": {
    "max_courses_per_term": 2,
    "avoid": [],
    "allow_voluntary_skip": true,
    "num_threads": 2,
    "limits": {"max_nodes": 1000, "max_memory_bytes": 0, "max_seconds": 0}
  },
  "filters": {"max_term_hours": 30, "max_skips": 1},
  "degradation": {
    "ladder": ["full", "ranked-small-k", "count-only"],
    "time_fraction": 0.25,
    "degraded_top_k": 2,
    "degraded_max_nodes": 500,
    "count_max_nodes": 10000
  }
})json";

TEST(RequestJsonTest, RoundTripIsLossless) {
  testing_util::Figure3Fixture fixture;
  auto parsed_doc = JsonValue::Parse(kRequestDocument);
  ASSERT_TRUE(parsed_doc.ok()) << parsed_doc.status().ToString();
  auto request = ExplorationRequestFromJson(*parsed_doc, fixture.catalog);
  ASSERT_TRUE(request.ok()) << request.status().ToString();

  EXPECT_EQ(request->start.term.ToString(), "Fall 2011");
  EXPECT_TRUE(request->start.completed.test(fixture.c29a));
  EXPECT_EQ(request->end_term.ToString(), "Spring 2013");
  EXPECT_EQ(request->type, TaskType::kRanked);
  ASSERT_NE(request->goal, nullptr);
  ASSERT_NE(request->ranking, nullptr);
  EXPECT_EQ(request->ranking->name(), "time");
  EXPECT_EQ(request->top_k, 4);
  EXPECT_EQ(request->options.max_courses_per_term, 2);
  EXPECT_TRUE(request->options.allow_voluntary_skip);
  EXPECT_EQ(request->options.num_threads, 2);
  EXPECT_EQ(request->options.limits.max_nodes, 1000);
  EXPECT_EQ(request->filters.max_term_hours, 30.0);
  EXPECT_EQ(request->filters.max_skips, 1);
  ASSERT_TRUE(request->degradation.has_value());
  EXPECT_EQ(request->degradation->ladder.size(), 3u);
  EXPECT_EQ(request->degradation->ladder[1],
            DegradationLevel::kRankedSmallK);
  EXPECT_EQ(request->degradation->time_fraction, 0.25);
  EXPECT_EQ(request->degradation->degraded_top_k, 2);
  EXPECT_EQ(request->degradation->degraded_max_nodes, 500);
  EXPECT_EQ(request->degradation->count_max_nodes, 10000);

  // To JSON and back: the canonical serialization is a fixed point.
  auto serialized = ExplorationRequestToJson(*request, fixture.catalog);
  ASSERT_TRUE(serialized.ok()) << serialized.status().ToString();
  auto reparsed = ExplorationRequestFromJson(*serialized, fixture.catalog);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  auto reserialized = ExplorationRequestToJson(*reparsed, fixture.catalog);
  ASSERT_TRUE(reserialized.ok());
  EXPECT_EQ(serialized->Dump(2), reserialized->Dump(2));
}

TEST(RequestJsonTest, ParsedRequestExecutesLikeItsHandBuiltTwin) {
  testing_util::Figure3Fixture fixture;
  auto doc = JsonValue::Parse(
      R"({"start": {"term": "Fall 2011"}, "end_term": "Spring 2013",
          "type": "goal", "goal": "11A and 21A"})");
  ASSERT_TRUE(doc.ok());
  auto request = ExplorationRequestFromJson(*doc, fixture.catalog);
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  auto from_json =
      plan::Execute(fixture.catalog, fixture.schedule, *request);
  ASSERT_TRUE(from_json.ok()) << from_json.status().ToString();

  ExplorationRequest twin;
  twin.start = fixture.FreshStudent();
  twin.end_term = fixture.spring13;
  twin.type = TaskType::kGoalDriven;
  twin.goal = MakeExprGoal("11A and 21A", fixture.catalog);
  auto built = plan::Execute(fixture.catalog, fixture.schedule, twin);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(GraphDifference(from_json->generation->graph,
                            built->generation->graph),
            "");
}

TEST(RequestJsonTest, InMemoryOnlyRequestsRefuseToSerialize) {
  testing_util::Figure3Fixture fixture;
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  request.type = TaskType::kGoalDriven;
  request.goal = MakeExprGoal("11A", fixture.catalog);  // no goal_spec
  auto serialized = ExplorationRequestToJson(request, fixture.catalog);
  ASSERT_FALSE(serialized.ok());
  EXPECT_EQ(serialized.status().code(), StatusCode::kInvalidArgument);
}

TEST(RequestJsonTest, RejectsUnknownRankingAndType) {
  testing_util::Figure3Fixture fixture;
  auto bad_ranking = JsonValue::Parse(
      R"({"start": {"term": "Fall 2011"}, "end_term": "Spring 2013",
          "type": "ranked", "goal": "11A", "ranking": "reliability"})");
  ASSERT_TRUE(bad_ranking.ok());
  auto request = ExplorationRequestFromJson(*bad_ranking, fixture.catalog);
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("unknown ranking"),
            std::string::npos);

  auto bad_type = JsonValue::Parse(
      R"({"start": {"term": "Fall 2011"}, "end_term": "Spring 2013",
          "type": "speedrun"})");
  ASSERT_TRUE(bad_type.ok());
  EXPECT_FALSE(
      ExplorationRequestFromJson(*bad_type, fixture.catalog).ok());
}

// ---------------------------------------------------------------------------
// Degradation rungs as plan rewrites.
// ---------------------------------------------------------------------------

TEST(RewriteForDegradationTest, FullRungIsIdentity) {
  testing_util::Figure3Fixture fixture;
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  request.options.limits.max_nodes = 123;
  DegradationPolicy policy;
  policy.degraded_max_nodes = 7;
  auto rewritten = plan::RewriteForDegradation(
      request, DegradationLevel::kFull, policy);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->type, TaskType::kDeadlineDriven);
  EXPECT_EQ(rewritten->options.limits.max_nodes, 123);
}

TEST(RewriteForDegradationTest, AggressivePruningNeedsAGoal) {
  testing_util::Figure3Fixture fixture;
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  DegradationPolicy policy;
  auto rewritten = plan::RewriteForDegradation(
      request, DegradationLevel::kAggressivePruning, policy);
  ASSERT_FALSE(rewritten.ok());
  EXPECT_EQ(rewritten.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(rewritten.status().message(),
            "aggressive pruning needs a goal-driven request");
}

TEST(RewriteForDegradationTest, AggressivePruningForcesEveryStrategy) {
  testing_util::Figure3Fixture fixture;
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  request.type = TaskType::kGoalDriven;
  request.goal = MakeExprGoal("11A", fixture.catalog);
  DegradationPolicy policy;
  policy.degraded_max_nodes = 50;
  auto rewritten = plan::RewriteForDegradation(
      request, DegradationLevel::kAggressivePruning, policy);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->type, TaskType::kGoalDriven);
  EXPECT_TRUE(rewritten->config.enable_time_pruning);
  EXPECT_TRUE(rewritten->config.enable_availability_pruning);
  EXPECT_TRUE(rewritten->config.enforce_min_selection);
  EXPECT_TRUE(rewritten->config.cache_availability_checks);
  EXPECT_EQ(rewritten->options.limits.max_nodes, 50);
}

TEST(RewriteForDegradationTest, RankedSmallKCapsK) {
  testing_util::Figure3Fixture fixture;
  TimeRanking ranking;
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  request.type = TaskType::kRanked;
  request.goal = MakeExprGoal("11A", fixture.catalog);
  request.ranking = std::shared_ptr<const RankingFunction>(
      std::shared_ptr<const RankingFunction>(), &ranking);
  request.top_k = 10;
  DegradationPolicy policy;
  policy.degraded_top_k = 3;
  auto rewritten = plan::RewriteForDegradation(
      request, DegradationLevel::kRankedSmallK, policy);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->type, TaskType::kRanked);
  EXPECT_EQ(rewritten->top_k, 3);

  request.ranking = nullptr;
  auto no_ranking = plan::RewriteForDegradation(
      request, DegradationLevel::kRankedSmallK, policy);
  ASSERT_FALSE(no_ranking.ok());
  EXPECT_EQ(no_ranking.status().message(),
            "ranked fallback needs a goal and a ranking");
}

TEST(RewriteForDegradationTest, CountOnlyAppliesCountCap) {
  testing_util::Figure3Fixture fixture;
  ExplorationRequest request;
  request.start = fixture.FreshStudent();
  request.end_term = fixture.spring13;
  request.options.limits.max_nodes = 123;
  DegradationPolicy policy;
  policy.count_max_nodes = 9999;
  auto rewritten = plan::RewriteForDegradation(
      request, DegradationLevel::kCountOnly, policy);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->options.limits.max_nodes, 9999);
}

}  // namespace
}  // namespace coursenav

#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace coursenav {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad m");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad m");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad m");
}

TEST(StatusTest, AllCodesStringify) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "DeadlineExceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto fails = []() -> Result<int> { return Status::OutOfRange("nope"); };
  auto wrapper = [&]() -> Result<int> {
    COURSENAV_ASSIGN_OR_RETURN(int v, fails());
    return v + 1;
  };
  Result<int> r = wrapper();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

}  // namespace
}  // namespace coursenav

#include "util/flags.h"

#include <gtest/gtest.h>

namespace coursenav {
namespace {

FlagSet ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return FlagSet::Parse(static_cast<int>(args.size()),
                        const_cast<char**>(args.data()));
}

TEST(FlagSetTest, EqualsForm) {
  FlagSet flags = ParseArgs({"--name=value", "--k=5"});
  EXPECT_EQ(*flags.GetString("name", ""), "value");
  EXPECT_EQ(*flags.GetInt("k", 0), 5);
}

TEST(FlagSetTest, SpaceForm) {
  FlagSet flags = ParseArgs({"--start", "Fall 2013"});
  EXPECT_EQ(*flags.GetString("start", ""), "Fall 2013");
}

TEST(FlagSetTest, BareFlagIsTrue) {
  FlagSet flags = ParseArgs({"--demo"});
  EXPECT_TRUE(flags.Has("demo"));
  EXPECT_TRUE(flags.GetBool("demo"));
  EXPECT_FALSE(flags.GetBool("other"));
  EXPECT_TRUE(flags.GetBool("other", true));
}

TEST(FlagSetTest, BoolFalseSpellings) {
  EXPECT_FALSE(ParseArgs({"--x=false"}).GetBool("x", true));
  EXPECT_FALSE(ParseArgs({"--x=0"}).GetBool("x", true));
  EXPECT_TRUE(ParseArgs({"--x=yes"}).GetBool("x"));
}

TEST(FlagSetTest, PositionalArguments) {
  FlagSet flags = ParseArgs({"explore", "--k=2", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "explore");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(FlagSetTest, DoubleDashEndsFlags) {
  FlagSet flags = ParseArgs({"--a=1", "--", "--not-a-flag"});
  EXPECT_TRUE(flags.Has("a"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "--not-a-flag");
}

TEST(FlagSetTest, DefaultsWhenAbsent) {
  FlagSet flags = ParseArgs({});
  EXPECT_EQ(*flags.GetString("s", "dflt"), "dflt");
  EXPECT_EQ(*flags.GetInt("i", 42), 42);
  EXPECT_DOUBLE_EQ(*flags.GetDouble("d", 2.5), 2.5);
}

TEST(FlagSetTest, TypedParseErrors) {
  FlagSet flags = ParseArgs({"--k=abc", "--d=x"});
  EXPECT_TRUE(flags.GetInt("k", 0).status().IsInvalidArgument());
  EXPECT_TRUE(flags.GetDouble("d", 0).status().IsInvalidArgument());
}

TEST(FlagSetTest, CheckKnown) {
  FlagSet flags = ParseArgs({"--good=1", "--typo=2"});
  EXPECT_TRUE(flags.CheckKnown({"good"}).IsInvalidArgument());
  EXPECT_TRUE(flags.CheckKnown({"good", "typo"}).ok());
}

TEST(FlagSetTest, DoubleValues) {
  FlagSet flags = ParseArgs({"--seconds=1.5"});
  EXPECT_DOUBLE_EQ(*flags.GetDouble("seconds", 0), 1.5);
}

}  // namespace
}  // namespace coursenav

#include "service/navigator.h"

#include <gtest/gtest.h>

#include "requirements/expr_goal.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::Figure3Fixture;

class NavigatorTest : public ::testing::Test {
 protected:
  NavigatorTest() : navigator_(&fix_.catalog, &fix_.schedule) {}

  std::shared_ptr<const Goal> AllThree() {
    auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix_.catalog);
    EXPECT_TRUE(goal.ok());
    return *goal;
  }

  Figure3Fixture fix_;
  CourseNavigator navigator_;
};

TEST_F(NavigatorTest, DeadlineRequestDispatches) {
  ExplorationRequest request;
  request.start = fix_.FreshStudent();
  request.end_term = fix_.spring13;
  request.type = TaskType::kDeadlineDriven;
  auto response = navigator_.Explore(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->generation.has_value());
  EXPECT_FALSE(response->ranked.has_value());
  EXPECT_EQ(response->generation->graph.num_nodes(), 9);
}

TEST_F(NavigatorTest, GoalRequestDispatches) {
  ExplorationRequest request;
  request.start = fix_.FreshStudent();
  request.end_term = Term(Season::kFall, 2012);
  request.type = TaskType::kGoalDriven;
  request.goal = AllThree();
  auto response = navigator_.Explore(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->generation.has_value());
  EXPECT_EQ(response->generation->stats.goal_paths, 1);
}

TEST_F(NavigatorTest, RankedRequestDispatches) {
  ExplorationRequest request;
  request.start = fix_.FreshStudent();
  request.end_term = fix_.spring13;
  request.type = TaskType::kRanked;
  request.goal = AllThree();
  request.ranking = std::make_shared<TimeRanking>();
  request.top_k = 2;
  auto response = navigator_.Explore(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ranked.has_value());
  EXPECT_FALSE(response->generation.has_value());
  EXPECT_LE(response->ranked->paths.size(), 2u);
  EXPECT_FALSE(response->ranked->paths.empty());
}

TEST_F(NavigatorTest, MissingGoalRejected) {
  ExplorationRequest request;
  request.start = fix_.FreshStudent();
  request.end_term = fix_.spring13;
  request.type = TaskType::kGoalDriven;
  EXPECT_TRUE(navigator_.Explore(request).status().IsInvalidArgument());
  request.type = TaskType::kRanked;
  EXPECT_TRUE(navigator_.Explore(request).status().IsInvalidArgument());
}

TEST_F(NavigatorTest, MissingRankingRejected) {
  ExplorationRequest request;
  request.start = fix_.FreshStudent();
  request.end_term = fix_.spring13;
  request.type = TaskType::kRanked;
  request.goal = AllThree();
  EXPECT_TRUE(navigator_.Explore(request).status().IsInvalidArgument());
}

TEST_F(NavigatorTest, CountingWrappers) {
  ExplorationOptions options;
  auto deadline = navigator_.CountDeadline(fix_.FreshStudent(), fix_.spring13,
                                           options);
  ASSERT_TRUE(deadline.ok());
  EXPECT_EQ(deadline->total_paths, 3u);
  auto goal = AllThree();
  auto counted = navigator_.CountGoal(fix_.FreshStudent(),
                                      Term(Season::kFall, 2012), *goal,
                                      options);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->goal_paths, 1u);
}

TEST_F(NavigatorTest, AccessorsExposeDataset) {
  EXPECT_EQ(navigator_.catalog().size(), 3);
  EXPECT_FALSE(navigator_.schedule().empty());
}

}  // namespace
}  // namespace coursenav

// Graceful-degradation ladder tests: complete answers stay undegraded,
// budget-starved requests descend rung by rung, and a dead budget still
// yields the best partial answer plus an honest DegradationReport.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "data/brandeis_cs.h"
#include "service/degradation.h"
#include "service/session.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

class DegradationTest : public ::testing::Test {
 protected:
  data::BrandeisDataset dataset_ = data::BuildBrandeisDataset();
  Term end_ = data::EvaluationEndTerm();
  CourseNavigator navigator_{&dataset_.catalog, &dataset_.schedule};

  ExplorationRequest GoalRequest(int span) {
    ExplorationRequest request;
    request.start = {data::StartTermForSpan(span),
                     dataset_.catalog.NewCourseSet()};
    request.end_term = end_;
    request.type = TaskType::kGoalDriven;
    request.goal = dataset_.cs_major;
    return request;
  }
};

TEST_F(DegradationTest, DefaultLaddersEndInCounting) {
  for (TaskType type : {TaskType::kDeadlineDriven, TaskType::kGoalDriven,
                        TaskType::kRanked}) {
    std::vector<DegradationLevel> ladder = DefaultLadder(type);
    ASSERT_FALSE(ladder.empty());
    EXPECT_EQ(ladder.front(), DegradationLevel::kFull);
    EXPECT_EQ(ladder.back(), DegradationLevel::kCountOnly);
  }
  std::vector<DegradationLevel> ranked = DefaultLadder(TaskType::kRanked);
  EXPECT_EQ(std::count(ranked.begin(), ranked.end(),
                       DegradationLevel::kRankedSmallK),
            1);
}

TEST_F(DegradationTest, GenerousBudgetServesTheFullAnswer) {
  ExplorationRequest request = GoalRequest(4);
  auto degraded = ExploreWithDegradation(navigator_, request);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_FALSE(degraded->report.degraded);
  EXPECT_FALSE(degraded->report.exhausted);
  EXPECT_EQ(degraded->report.level_served, DegradationLevel::kFull);
  ASSERT_TRUE(degraded->response.generation.has_value());
  EXPECT_TRUE(degraded->response.generation->termination.ok());
  ASSERT_EQ(degraded->report.rungs.size(), 1u);
  EXPECT_TRUE(degraded->report.rungs[0].outcome.ok());
}

TEST_F(DegradationTest, NodeStarvedRequestDescendsToCounting) {
  // Span 5: ~860k goal paths but only ~150k distinct statuses, so the graph
  // rungs die on a 500-node cap while counting finishes in well under a
  // second once its cap is lifted.
  ExplorationRequest request = GoalRequest(5);
  request.options.limits.max_nodes = 500;  // kills both graph rungs
  DegradationPolicy policy;
  policy.count_max_nodes = 1 << 20;  // counting memoizes; lift its cap
  auto degraded = ExploreWithDegradation(navigator_, request, policy);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->report.degraded);
  EXPECT_FALSE(degraded->report.exhausted);
  EXPECT_EQ(degraded->report.level_served, DegradationLevel::kCountOnly);
  ASSERT_TRUE(degraded->count.has_value());
  EXPECT_GT(degraded->count->goal_paths, 0u);
  // Every rung above the one that answered is recorded with its failure.
  ASSERT_EQ(degraded->report.rungs.size(), 3u);
  EXPECT_TRUE(degraded->report.rungs[0].attempted);
  EXPECT_TRUE(degraded->report.rungs[0].outcome.IsResourceExhausted());
  EXPECT_TRUE(degraded->report.rungs[1].attempted);
  EXPECT_TRUE(degraded->report.rungs[1].outcome.IsResourceExhausted());
  EXPECT_TRUE(degraded->report.rungs[2].outcome.ok());
  // The report carries a human-readable rendering.
  EXPECT_NE(degraded->report.ToString().find("count-only"),
            std::string::npos);
}

TEST_F(DegradationTest, FiftyMsDeadlineOnBlowUpAnswersWithinTwiceThat) {
  ExplorationRequest request = GoalRequest(6);
  request.options.limits.max_seconds = 0.05;
  auto start = std::chrono::steady_clock::now();
  auto degraded = ExploreWithDegradation(navigator_, request);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  // The acceptance bar: a degraded response, with a populated report, in
  // under twice the deadline — the ladder slices one budget, it does not
  // stack budgets.
  EXPECT_LT(elapsed, 0.1);
  EXPECT_TRUE(degraded->report.degraded);
  ASSERT_FALSE(degraded->report.rungs.empty());
  EXPECT_TRUE(degraded->report.rungs[0].attempted);
  EXPECT_FALSE(degraded->report.rungs[0].outcome.ok());
  EXPECT_GT(degraded->report.rungs[0].seconds_budget, 0.0);
  // Some payload survived: a partial graph, partial top-k, or a count.
  EXPECT_TRUE(degraded->response.generation.has_value() ||
              degraded->response.ranked.has_value() ||
              degraded->count.has_value());
  if (degraded->response.generation.has_value()) {
    const GenerationResult& generation = *degraded->response.generation;
    EXPECT_EQ(testing_util::StructureErrors(generation.graph), "");
    EXPECT_EQ(testing_util::StatsErrors(generation.graph, generation.stats),
              "");
  }
}

TEST_F(DegradationTest, ExhaustedLadderServesBestPartialAnswer) {
  ExplorationRequest request = GoalRequest(6);
  request.options.limits.max_nodes = 200;  // kills the graph rungs...
  auto degraded = ExploreWithDegradation(navigator_, request);
  // ...and the inherited cap kills counting too (200 distinct statuses).
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->report.degraded);
  EXPECT_TRUE(degraded->report.exhausted);
  ASSERT_TRUE(degraded->response.generation.has_value());
  const GenerationResult& generation = *degraded->response.generation;
  EXPECT_TRUE(generation.termination.IsResourceExhausted());
  EXPECT_LE(generation.graph.num_nodes(), 201);
  EXPECT_EQ(testing_util::StructureErrors(generation.graph), "");
  for (const DegradationRung& rung : degraded->report.rungs) {
    if (rung.attempted) {
      EXPECT_FALSE(rung.outcome.ok());
    }
  }
}

TEST_F(DegradationTest, CancellationPropagatesInsteadOfDegrading) {
  ExplorationRequest request = GoalRequest(5);
  request.options.cancel = CancellationToken::Cancellable();
  request.options.cancel.RequestCancel();
  auto degraded = ExploreWithDegradation(navigator_, request);
  EXPECT_TRUE(degraded.status().IsCancelled())
      << degraded.status().ToString();
}

TEST_F(DegradationTest, MalformedRequestsPropagateInsteadOfDegrading) {
  ExplorationRequest request = GoalRequest(4);
  request.goal = nullptr;  // goal-driven without a goal
  auto degraded = ExploreWithDegradation(navigator_, request);
  EXPECT_FALSE(degraded.ok());
  EXPECT_FALSE(degraded.status().IsResourceExhausted());
  EXPECT_FALSE(degraded.status().IsDeadlineExceeded());
}

TEST_F(DegradationTest, RankedRequestsFallBackToSmallerK) {
  ExplorationRequest request = GoalRequest(5);
  request.type = TaskType::kRanked;
  auto ranking = std::make_shared<TimeRanking>();
  request.ranking = ranking;
  request.top_k = 1000;  // unreachable under a 500-node cap
  request.options.limits.max_nodes = 500;
  DegradationPolicy policy;
  policy.count_max_nodes = 1 << 20;
  auto degraded = ExploreWithDegradation(navigator_, request, policy);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->report.degraded);
  EXPECT_FALSE(degraded->report.exhausted);
  // The full-k rung fell; the report walked the small-k rung on the way to
  // whichever fallback answered (small k or counting).
  ASSERT_GE(degraded->report.rungs.size(), 2u);
  EXPECT_TRUE(degraded->report.rungs[0].outcome.IsResourceExhausted());
  EXPECT_EQ(degraded->report.rungs[1].level,
            DegradationLevel::kRankedSmallK);
  if (degraded->report.level_served == DegradationLevel::kRankedSmallK) {
    ASSERT_TRUE(degraded->response.ranked.has_value());
    EXPECT_LE(degraded->response.ranked->paths.size(), 3u);
  } else {
    EXPECT_EQ(degraded->report.level_served, DegradationLevel::kCountOnly);
    EXPECT_TRUE(degraded->count.has_value());
  }
}

TEST_F(DegradationTest, SessionExploreDegradedSurfacesTheReport) {
  ExplorationSession session(&dataset_.catalog, &dataset_.schedule,
                             dataset_.cs_major,
                             {data::StartTermForSpan(4),
                              dataset_.catalog.NewCourseSet()},
                             end_);
  auto degraded = session.ExploreDegraded();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_FALSE(degraded->report.degraded);
  EXPECT_TRUE(degraded->response.generation.has_value());

  TimeRanking ranking;
  auto ranked = session.TopKDegraded(ranking, 3);
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
  ASSERT_TRUE(ranked->response.ranked.has_value());
  EXPECT_LE(ranked->response.ranked->paths.size(), 3u);
}

}  // namespace
}  // namespace coursenav

// Graceful-degradation ladder tests: complete answers stay undegraded,
// budget-starved requests descend rung by rung, and a dead budget still
// yields the best partial answer plus an honest DegradationReport.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "data/brandeis_cs.h"
#include "service/degradation.h"
#include "service/session.h"
#include "tests/test_util.h"
#include "util/json.h"

namespace coursenav {
namespace {

/// Field-by-field equality for round-trip assertions.
void ExpectReportsEqual(const DegradationReport& a,
                        const DegradationReport& b) {
  EXPECT_EQ(a.level_served, b.level_served);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.exhausted, b.exhausted);
  ASSERT_EQ(a.rungs.size(), b.rungs.size());
  for (size_t i = 0; i < a.rungs.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.rungs[i].level, b.rungs[i].level);
    EXPECT_EQ(a.rungs[i].attempted, b.rungs[i].attempted);
    EXPECT_EQ(a.rungs[i].outcome.code(), b.rungs[i].outcome.code());
    EXPECT_EQ(a.rungs[i].outcome.message(), b.rungs[i].outcome.message());
    EXPECT_EQ(a.rungs[i].seconds_budget, b.rungs[i].seconds_budget);
    EXPECT_EQ(a.rungs[i].seconds_spent, b.rungs[i].seconds_spent);
    EXPECT_EQ(a.rungs[i].nodes_created, b.rungs[i].nodes_created);
  }
}

class DegradationTest : public ::testing::Test {
 protected:
  data::BrandeisDataset dataset_ = data::BuildBrandeisDataset();
  Term end_ = data::EvaluationEndTerm();
  CourseNavigator navigator_{&dataset_.catalog, &dataset_.schedule};

  ExplorationRequest GoalRequest(int span) {
    ExplorationRequest request;
    request.start = {data::StartTermForSpan(span),
                     dataset_.catalog.NewCourseSet()};
    request.end_term = end_;
    request.type = TaskType::kGoalDriven;
    request.goal = dataset_.cs_major;
    return request;
  }
};

TEST_F(DegradationTest, DefaultLaddersEndInCounting) {
  for (TaskType type : {TaskType::kDeadlineDriven, TaskType::kGoalDriven,
                        TaskType::kRanked}) {
    std::vector<DegradationLevel> ladder = DefaultLadder(type);
    ASSERT_FALSE(ladder.empty());
    EXPECT_EQ(ladder.front(), DegradationLevel::kFull);
    EXPECT_EQ(ladder.back(), DegradationLevel::kCountOnly);
  }
  std::vector<DegradationLevel> ranked = DefaultLadder(TaskType::kRanked);
  EXPECT_EQ(std::count(ranked.begin(), ranked.end(),
                       DegradationLevel::kRankedSmallK),
            1);
}

TEST_F(DegradationTest, GenerousBudgetServesTheFullAnswer) {
  ExplorationRequest request = GoalRequest(4);
  auto degraded = ExploreWithDegradation(navigator_, request);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_FALSE(degraded->report.degraded);
  EXPECT_FALSE(degraded->report.exhausted);
  EXPECT_EQ(degraded->report.level_served, DegradationLevel::kFull);
  ASSERT_TRUE(degraded->response.generation.has_value());
  EXPECT_TRUE(degraded->response.generation->termination.ok());
  ASSERT_EQ(degraded->report.rungs.size(), 1u);
  EXPECT_TRUE(degraded->report.rungs[0].outcome.ok());
}

TEST_F(DegradationTest, NodeStarvedRequestDescendsToCounting) {
  // Span 5: ~860k goal paths but only ~150k distinct statuses, so the graph
  // rungs die on a 500-node cap while counting finishes in well under a
  // second once its cap is lifted.
  ExplorationRequest request = GoalRequest(5);
  request.options.limits.max_nodes = 500;  // kills both graph rungs
  DegradationPolicy policy;
  policy.count_max_nodes = 1 << 20;  // counting memoizes; lift its cap
  auto degraded = ExploreWithDegradation(navigator_, request, policy);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->report.degraded);
  EXPECT_FALSE(degraded->report.exhausted);
  EXPECT_EQ(degraded->report.level_served, DegradationLevel::kCountOnly);
  ASSERT_TRUE(degraded->count.has_value());
  EXPECT_GT(degraded->count->goal_paths, 0u);
  // Every rung above the one that answered is recorded with its failure.
  ASSERT_EQ(degraded->report.rungs.size(), 3u);
  EXPECT_TRUE(degraded->report.rungs[0].attempted);
  EXPECT_TRUE(degraded->report.rungs[0].outcome.IsResourceExhausted());
  EXPECT_TRUE(degraded->report.rungs[1].attempted);
  EXPECT_TRUE(degraded->report.rungs[1].outcome.IsResourceExhausted());
  EXPECT_TRUE(degraded->report.rungs[2].outcome.ok());
  // The report carries a human-readable rendering.
  EXPECT_NE(degraded->report.ToString().find("count-only"),
            std::string::npos);

  // A real ladder run's report round-trips through the JSON exporter with
  // full fidelity, including the non-OK outcomes on the fallen rungs.
  Result<JsonValue> reparsed = JsonValue::Parse(degraded->report.ToJson()
                                                    .Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  Result<DegradationReport> round_trip = DegradationReport::FromJson(
      *reparsed);
  ASSERT_TRUE(round_trip.ok()) << round_trip.status().ToString();
  ExpectReportsEqual(degraded->report, *round_trip);
}

TEST_F(DegradationTest, ReportJsonRoundTripsEveryField) {
  DegradationReport report;
  report.level_served = DegradationLevel::kRankedSmallK;
  report.degraded = true;
  report.exhausted = true;
  DegradationRung full;
  full.level = DegradationLevel::kFull;
  full.attempted = true;
  full.outcome = Status::ResourceExhausted("node budget (500) exhausted");
  full.seconds_budget = 0.125;
  full.seconds_spent = 0.0625;  // binary fractions survive double exactly
  full.nodes_created = 500;
  report.rungs.push_back(full);
  DegradationRung skipped;
  skipped.level = DegradationLevel::kRankedSmallK;
  skipped.attempted = false;
  skipped.outcome = Status::FailedPrecondition("needs a goal and a ranking");
  report.rungs.push_back(skipped);

  JsonValue json = report.ToJson();
  // Through the actual serialized text, not just the in-memory tree.
  Result<JsonValue> reparsed = JsonValue::Parse(json.Dump(2));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  Result<DegradationReport> round_trip =
      DegradationReport::FromJson(*reparsed);
  ASSERT_TRUE(round_trip.ok()) << round_trip.status().ToString();
  ExpectReportsEqual(report, *round_trip);
}

TEST_F(DegradationTest, ReportFromJsonRejectsMalformedInput) {
  EXPECT_FALSE(DegradationReport::FromJson(JsonValue("not an object")).ok());
  // Unknown level name.
  DegradationReport report;
  JsonValue json = report.ToJson();
  json.object()["level_served"] = JsonValue(std::string("warp-speed"));
  EXPECT_FALSE(DegradationReport::FromJson(json).ok());
  // Unknown status code inside a rung.
  DegradationRung rung;
  report.rungs.push_back(rung);
  json = report.ToJson();
  json.object()["rungs"].array()[0].object()["outcome"].object()["code"] =
      JsonValue(std::string("kBogus"));
  EXPECT_FALSE(DegradationReport::FromJson(json).ok());
}

TEST_F(DegradationTest, ParseDegradationLevelMatchesNames) {
  for (DegradationLevel level :
       {DegradationLevel::kFull, DegradationLevel::kAggressivePruning,
        DegradationLevel::kRankedSmallK, DegradationLevel::kCountOnly}) {
    Result<DegradationLevel> parsed =
        ParseDegradationLevel(DegradationLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(ParseDegradationLevel("turbo").ok());
}

TEST_F(DegradationTest, FiftyMsDeadlineOnBlowUpAnswersWithinTwiceThat) {
  ExplorationRequest request = GoalRequest(6);
  request.options.limits.max_seconds = 0.05;
  auto start = std::chrono::steady_clock::now();
  auto degraded = ExploreWithDegradation(navigator_, request);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  // The acceptance bar: a degraded response, with a populated report, in
  // under twice the deadline — the ladder slices one budget, it does not
  // stack budgets.
  EXPECT_LT(elapsed, 0.1);
  EXPECT_TRUE(degraded->report.degraded);
  ASSERT_FALSE(degraded->report.rungs.empty());
  EXPECT_TRUE(degraded->report.rungs[0].attempted);
  EXPECT_FALSE(degraded->report.rungs[0].outcome.ok());
  EXPECT_GT(degraded->report.rungs[0].seconds_budget, 0.0);
  // Some payload survived: a partial graph, partial top-k, or a count.
  EXPECT_TRUE(degraded->response.generation.has_value() ||
              degraded->response.ranked.has_value() ||
              degraded->count.has_value());
  if (degraded->response.generation.has_value()) {
    const GenerationResult& generation = *degraded->response.generation;
    EXPECT_EQ(testing_util::StructureErrors(generation.graph), "");
    EXPECT_EQ(testing_util::StatsErrors(generation.graph, generation.stats),
              "");
  }
}

TEST_F(DegradationTest, ExhaustedLadderServesBestPartialAnswer) {
  ExplorationRequest request = GoalRequest(6);
  request.options.limits.max_nodes = 200;  // kills the graph rungs...
  auto degraded = ExploreWithDegradation(navigator_, request);
  // ...and the inherited cap kills counting too (200 distinct statuses).
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->report.degraded);
  EXPECT_TRUE(degraded->report.exhausted);
  ASSERT_TRUE(degraded->response.generation.has_value());
  const GenerationResult& generation = *degraded->response.generation;
  EXPECT_TRUE(generation.termination.IsResourceExhausted());
  EXPECT_LE(generation.graph.num_nodes(), 201);
  EXPECT_EQ(testing_util::StructureErrors(generation.graph), "");
  for (const DegradationRung& rung : degraded->report.rungs) {
    if (rung.attempted) {
      EXPECT_FALSE(rung.outcome.ok());
    }
  }
}

TEST_F(DegradationTest, CancellationPropagatesInsteadOfDegrading) {
  ExplorationRequest request = GoalRequest(5);
  request.options.cancel = CancellationToken::Cancellable();
  request.options.cancel.RequestCancel();
  auto degraded = ExploreWithDegradation(navigator_, request);
  EXPECT_TRUE(degraded.status().IsCancelled())
      << degraded.status().ToString();
}

TEST_F(DegradationTest, MalformedRequestsPropagateInsteadOfDegrading) {
  ExplorationRequest request = GoalRequest(4);
  request.goal = nullptr;  // goal-driven without a goal
  auto degraded = ExploreWithDegradation(navigator_, request);
  EXPECT_FALSE(degraded.ok());
  EXPECT_FALSE(degraded.status().IsResourceExhausted());
  EXPECT_FALSE(degraded.status().IsDeadlineExceeded());
}

TEST_F(DegradationTest, RankedRequestsFallBackToSmallerK) {
  ExplorationRequest request = GoalRequest(5);
  request.type = TaskType::kRanked;
  auto ranking = std::make_shared<TimeRanking>();
  request.ranking = ranking;
  request.top_k = 1000;  // unreachable under a 500-node cap
  request.options.limits.max_nodes = 500;
  DegradationPolicy policy;
  policy.count_max_nodes = 1 << 20;
  auto degraded = ExploreWithDegradation(navigator_, request, policy);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->report.degraded);
  EXPECT_FALSE(degraded->report.exhausted);
  // The full-k rung fell; the report walked the small-k rung on the way to
  // whichever fallback answered (small k or counting).
  ASSERT_GE(degraded->report.rungs.size(), 2u);
  EXPECT_TRUE(degraded->report.rungs[0].outcome.IsResourceExhausted());
  EXPECT_EQ(degraded->report.rungs[1].level,
            DegradationLevel::kRankedSmallK);
  if (degraded->report.level_served == DegradationLevel::kRankedSmallK) {
    ASSERT_TRUE(degraded->response.ranked.has_value());
    EXPECT_LE(degraded->response.ranked->paths.size(), 3u);
  } else {
    EXPECT_EQ(degraded->report.level_served, DegradationLevel::kCountOnly);
    EXPECT_TRUE(degraded->count.has_value());
  }
}

TEST_F(DegradationTest, SessionExploreDegradedSurfacesTheReport) {
  ExplorationSession session(&dataset_.catalog, &dataset_.schedule,
                             dataset_.cs_major,
                             {data::StartTermForSpan(4),
                              dataset_.catalog.NewCourseSet()},
                             end_);
  auto degraded = session.ExploreDegraded();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_FALSE(degraded->report.degraded);
  EXPECT_TRUE(degraded->response.generation.has_value());

  TimeRanking ranking;
  auto ranked = session.TopKDegraded(ranking, 3);
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
  ASSERT_TRUE(ranked->response.ranked.has_value());
  EXPECT_LE(ranked->response.ranked->paths.size(), 3u);
}

}  // namespace
}  // namespace coursenav

#include "graph/learning_graph.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "graph/export.h"
#include "graph/path.h"

namespace coursenav {
namespace {

class LearningGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* code : {"A", "B", "C"}) {
      Course c;
      c.code = code;
      ASSERT_TRUE(catalog_.AddCourse(std::move(c)).ok());
    }
    ASSERT_TRUE(catalog_.Finalize().ok());
  }

  DynamicBitset Bits(std::initializer_list<int> ids) {
    DynamicBitset b(catalog_.size());
    for (int id : ids) b.set(id);
    return b;
  }

  Catalog catalog_;
};

TEST_F(LearningGraphTest, RootAndChildren) {
  LearningGraph graph;
  Term f12(Season::kFall, 2012);
  NodeId root = graph.AddRoot(f12, Bits({}), Bits({0, 1}));
  EXPECT_EQ(root, 0);
  EXPECT_EQ(graph.num_nodes(), 1);
  EXPECT_EQ(graph.root(), root);

  NodeId child = graph.AddChild(root, Bits({0}), Bits({0}), Bits({2}), 1.5);
  EXPECT_EQ(graph.num_nodes(), 2);
  EXPECT_EQ(graph.num_edges(), 1);
  const LearningNode& node = graph.node(child);
  EXPECT_EQ(node.term, f12.Next());
  EXPECT_EQ(node.completed.ToIndices(), std::vector<int>{0});
  EXPECT_DOUBLE_EQ(node.path_cost, 1.5);
  const LearningEdge& edge = graph.edge(node.parent_edge);
  EXPECT_EQ(edge.from, root);
  EXPECT_EQ(edge.to, child);
  EXPECT_EQ(edge.selection.ToIndices(), std::vector<int>{0});
  EXPECT_EQ(graph.node(root).out_edges.size(), 1u);
}

TEST_F(LearningGraphTest, PathCostAccumulates) {
  LearningGraph graph;
  NodeId root = graph.AddRoot(Term(Season::kFall, 2012), Bits({}), Bits({0}));
  NodeId a = graph.AddChild(root, Bits({0}), Bits({0}), Bits({1}), 2.0);
  NodeId b = graph.AddChild(a, Bits({1}), Bits({0, 1}), Bits({}), 3.0);
  EXPECT_DOUBLE_EQ(graph.node(b).path_cost, 5.0);
}

TEST_F(LearningGraphTest, GoalAndLeafQueries) {
  LearningGraph graph;
  NodeId root = graph.AddRoot(Term(Season::kFall, 2012), Bits({}), Bits({0}));
  NodeId a = graph.AddChild(root, Bits({0}), Bits({0}), Bits({}));
  NodeId b = graph.AddChild(root, Bits({1}), Bits({1}), Bits({}));
  graph.MarkGoal(b);
  EXPECT_EQ(graph.GoalNodes(), std::vector<NodeId>{b});
  EXPECT_EQ(graph.LeafNodes(), (std::vector<NodeId>{a, b}));
  EXPECT_TRUE(graph.node(b).is_goal);
  EXPECT_FALSE(graph.node(a).is_goal);
}

TEST_F(LearningGraphTest, MemoryUsageGrows) {
  LearningGraph graph;
  NodeId root = graph.AddRoot(Term(Season::kFall, 2012), Bits({}), Bits({0}));
  size_t before = graph.MemoryUsage();
  graph.AddChild(root, Bits({0}), Bits({0}), Bits({}));
  EXPECT_GT(graph.MemoryUsage(), before);
}

TEST_F(LearningGraphTest, PathExtraction) {
  LearningGraph graph;
  Term f12(Season::kFall, 2012);
  NodeId root = graph.AddRoot(f12, Bits({}), Bits({0, 1}));
  NodeId mid = graph.AddChild(root, Bits({0, 1}), Bits({0, 1}), Bits({2}), 1);
  NodeId leaf = graph.AddChild(mid, Bits({2}), Bits({0, 1, 2}), Bits({}), 1);

  LearningPath path = LearningPath::FromGraph(graph, leaf);
  EXPECT_EQ(path.start_term(), f12);
  EXPECT_TRUE(path.start_completed().empty());
  ASSERT_EQ(path.steps().size(), 2u);
  EXPECT_EQ(path.steps()[0].term, f12);
  EXPECT_EQ(path.steps()[0].selection.ToIndices(), (std::vector<int>{0, 1}));
  EXPECT_EQ(path.steps()[1].term, f12.Next());
  EXPECT_EQ(path.steps()[1].selection.ToIndices(), std::vector<int>{2});
  EXPECT_EQ(path.Length(), 2);
  EXPECT_DOUBLE_EQ(path.cost(), 2.0);
  EXPECT_EQ(path.FinalCompleted().ToIndices(), (std::vector<int>{0, 1, 2}));
}

TEST_F(LearningGraphTest, PathOfRootIsEmpty) {
  LearningGraph graph;
  NodeId root = graph.AddRoot(Term(Season::kFall, 2012), Bits({0}), Bits({}));
  LearningPath path = LearningPath::FromGraph(graph, root);
  EXPECT_EQ(path.Length(), 0);
  EXPECT_EQ(path.FinalCompleted().ToIndices(), std::vector<int>{0});
}

TEST_F(LearningGraphTest, DotExportMentionsNodesAndSelections) {
  LearningGraph graph;
  NodeId root = graph.AddRoot(Term(Season::kFall, 2012), Bits({}), Bits({0}));
  NodeId leaf = graph.AddChild(root, Bits({0}), Bits({0}), Bits({}));
  graph.MarkGoal(leaf);
  std::string dot = LearningGraphToDot(graph, catalog_);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("Fall 2012"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("{A}"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
}

TEST_F(LearningGraphTest, JsonExportRoundTripsStructure) {
  LearningGraph graph;
  NodeId root = graph.AddRoot(Term(Season::kFall, 2012), Bits({}),
                              Bits({0, 1}));
  graph.AddChild(root, Bits({1}), Bits({1}), Bits({}));
  JsonValue doc = LearningGraphToJson(graph, catalog_);
  auto reparsed = JsonValue::Parse(doc.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Get("nodes")->array().size(), 2u);
  EXPECT_EQ(reparsed->Get("edges")->array().size(), 1u);
  auto edge = reparsed->Get("edges")->array()[0];
  EXPECT_EQ(*edge.Get("selection")->array()[0].GetString(), "B");
}

TEST_F(LearningGraphTest, PathJsonExport) {
  LearningGraph graph;
  NodeId root = graph.AddRoot(Term(Season::kFall, 2012), Bits({}), Bits({0}));
  NodeId leaf = graph.AddChild(root, Bits({0}), Bits({0}), Bits({}), 2.5);
  LearningPath path = LearningPath::FromGraph(graph, leaf);
  JsonValue doc = LearningPathToJson(path, catalog_);
  EXPECT_EQ(*doc.Get("start_term")->GetString(), "Fall 2012");
  EXPECT_DOUBLE_EQ(*doc.Get("cost")->GetNumber(), 2.5);
  EXPECT_EQ(doc.Get("steps")->array().size(), 1u);
  JsonValue multi = LearningPathsToJson({path, path}, catalog_);
  EXPECT_EQ(multi.array().size(), 2u);
}

}  // namespace
}  // namespace coursenav

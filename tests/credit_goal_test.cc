#include "requirements/credit_goal.h"

#include <gtest/gtest.h>

namespace coursenav {
namespace {

class CreditGoalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 5; ++i) {
      Course c;
      c.code = "C" + std::to_string(i);
      ASSERT_TRUE(catalog_.AddCourse(std::move(c)).ok());
    }
    ASSERT_TRUE(catalog_.Finalize().ok());
  }

  DynamicBitset Bits(std::initializer_list<int> ids) {
    DynamicBitset b(catalog_.size());
    for (int id : ids) b.set(id);
    return b;
  }

  DynamicBitset All() {
    DynamicBitset b(catalog_.size());
    for (int i = 0; i < catalog_.size(); ++i) b.set(i);
    return b;
  }

  Catalog catalog_;
};

TEST_F(CreditGoalTest, SatisfactionByCreditSum) {
  // Credits: 4, 4, 2, 2, 2; need 8 from any course.
  auto goal = CreditGoal::Create(catalog_, {4, 4, 2, 2, 2}, All(), 8);
  ASSERT_TRUE(goal.ok());
  EXPECT_FALSE((*goal)->IsSatisfied(Bits({0})));
  EXPECT_TRUE((*goal)->IsSatisfied(Bits({0, 1})));
  EXPECT_TRUE((*goal)->IsSatisfied(Bits({0, 2, 3})));
  EXPECT_FALSE((*goal)->IsSatisfied(Bits({2, 3, 4})));
  EXPECT_DOUBLE_EQ((*goal)->EarnedCredits(Bits({0, 2})), 6.0);
}

TEST_F(CreditGoalTest, EligibilityRestricts) {
  // Only C2..C4 count.
  auto goal = CreditGoal::Create(catalog_, {4, 4, 2, 2, 2}, Bits({2, 3, 4}),
                                 6);
  ASSERT_TRUE(goal.ok());
  EXPECT_FALSE((*goal)->IsSatisfied(Bits({0, 1})));  // 8 ineligible credits
  EXPECT_TRUE((*goal)->IsSatisfied(Bits({2, 3, 4})));
}

TEST_F(CreditGoalTest, MinCoursesRemainingIsGreedyExact) {
  auto goal = CreditGoal::Create(catalog_, {4, 4, 2, 2, 2}, All(), 8);
  ASSERT_TRUE(goal.ok());
  EXPECT_EQ((*goal)->MinCoursesRemaining(Bits({})), 2);    // 4 + 4
  EXPECT_EQ((*goal)->MinCoursesRemaining(Bits({0})), 1);   // + 4
  EXPECT_EQ((*goal)->MinCoursesRemaining(Bits({2})), 2);   // 2 + 4 + 4 > 8
  EXPECT_EQ((*goal)->MinCoursesRemaining(Bits({0, 1})), 0);
}

TEST_F(CreditGoalTest, MinCoursesUnreachableWhenSupplyExhausted) {
  auto goal = CreditGoal::Create(catalog_, {4, 4, 2, 2, 2},
                                 Bits({2, 3}), 4);
  ASSERT_TRUE(goal.ok());
  // 2 + 2 = 4 exactly; fine from scratch.
  EXPECT_EQ((*goal)->MinCoursesRemaining(Bits({})), 2);
  // But a goal over eligible {2,3} requiring 4 is dead if... it never is:
  // credits only accumulate, so with the full eligible set completed the
  // goal holds. Instead check the sentinel with an impossible leftover:
  // complete nothing, require more than remaining eligible supply can give
  // (construction rejects that), so kGoalUnreachable can only arise when
  // completed courses do not help and no eligible course remains — not
  // constructible here; assert monotonicity instead.
  EXPECT_TRUE((*goal)->IsMonotone());
}

TEST_F(CreditGoalTest, AchievableWith) {
  auto goal = CreditGoal::Create(catalog_, {4, 4, 2, 2, 2}, All(), 10);
  ASSERT_TRUE(goal.ok());
  EXPECT_TRUE((*goal)->AchievableWith(Bits({0}), Bits({1, 2})));   // 4+4+2
  EXPECT_FALSE((*goal)->AchievableWith(Bits({0}), Bits({2, 3})));  // 4+2+2
}

TEST_F(CreditGoalTest, UniformCredits) {
  auto goal = CreditGoal::UniformCredits(catalog_, 4.0, All(), 12);
  ASSERT_TRUE(goal.ok());
  EXPECT_EQ((*goal)->MinCoursesRemaining(Bits({})), 3);
  EXPECT_TRUE((*goal)->IsSatisfied(Bits({1, 2, 4})));
  EXPECT_NE((*goal)->Describe().find("12.0 credits"), std::string::npos);
}

TEST_F(CreditGoalTest, CreateValidation) {
  EXPECT_TRUE(CreditGoal::Create(catalog_, {1, 2}, All(), 2)
                  .status()
                  .IsInvalidArgument());  // wrong table size
  EXPECT_TRUE(CreditGoal::Create(catalog_, {1, 1, 1, 1, -1}, All(), 2)
                  .status()
                  .IsInvalidArgument());  // negative credits
  EXPECT_TRUE(CreditGoal::Create(catalog_, {1, 1, 1, 1, 1}, All(), 0)
                  .status()
                  .IsInvalidArgument());  // non-positive requirement
  EXPECT_TRUE(CreditGoal::Create(catalog_, {1, 1, 1, 1, 1}, All(), 6)
                  .status()
                  .IsInvalidArgument());  // exceeds supply
  EXPECT_TRUE(CreditGoal::Create(catalog_, {1, 1, 1, 1, 1},
                                 DynamicBitset(3), 2)
                  .status()
                  .IsInvalidArgument());  // foreign eligible set
}

}  // namespace
}  // namespace coursenav

#include "core/filters.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace coursenav {
namespace {

class FiltersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    struct Spec {
      const char* code;
      double workload;
    };
    for (const Spec& spec : std::initializer_list<Spec>{
             {"A", 4.0}, {"B", 6.0}, {"C", 9.0}, {"D", 3.0}}) {
      Course c;
      c.code = spec.code;
      c.workload_hours = spec.workload;
      ASSERT_TRUE(catalog_.AddCourse(std::move(c)).ok());
    }
    ASSERT_TRUE(catalog_.Finalize().ok());
  }

  DynamicBitset Bits(std::initializer_list<int> ids) {
    DynamicBitset b(catalog_.size());
    for (int id : ids) b.set(id);
    return b;
  }

  /// Path: F12 {A, B}, S13 {}, F13 {C}.
  LearningPath MakePath() {
    LearningPath path(Term(Season::kFall, 2012), catalog_.NewCourseSet());
    path.AppendStep(Term(Season::kFall, 2012), Bits({0, 1}));
    path.AppendStep(Term(Season::kSpring, 2013), Bits({}));
    path.AppendStep(Term(Season::kFall, 2013), Bits({2}));
    return path;
  }

  Catalog catalog_;
};

TEST_F(FiltersTest, MaxTermWorkload) {
  LearningPath path = MakePath();  // heaviest term: A+B = 10 hours
  EXPECT_TRUE(MaxTermWorkloadFilter(&catalog_, 10.0).Keep(path));
  EXPECT_FALSE(MaxTermWorkloadFilter(&catalog_, 9.5).Keep(path));
  EXPECT_TRUE(MaxTermWorkloadFilter(&catalog_, 100).Keep(path));
  EXPECT_NE(MaxTermWorkloadFilter(&catalog_, 9.5).Describe().find("9.5"),
            std::string::npos);
}

TEST_F(FiltersTest, CourseByTerm) {
  LearningPath path = MakePath();
  CourseId c = 2;  // taken Fall 2013
  EXPECT_TRUE(CourseByTermFilter(c, Term(Season::kFall, 2013)).Keep(path));
  EXPECT_TRUE(CourseByTermFilter(c, Term(Season::kFall, 2014)).Keep(path));
  EXPECT_FALSE(CourseByTermFilter(c, Term(Season::kSpring, 2013)).Keep(path));
  // Course never taken.
  EXPECT_FALSE(CourseByTermFilter(3, Term(Season::kFall, 2015)).Keep(path));
}

TEST_F(FiltersTest, CourseByTermCountsStartCompleted) {
  LearningPath path(Term(Season::kFall, 2012), Bits({3}));
  EXPECT_TRUE(CourseByTermFilter(3, Term(Season::kFall, 2012)).Keep(path));
}

TEST_F(FiltersTest, MaxSkips) {
  LearningPath path = MakePath();  // one skip
  EXPECT_TRUE(MaxSkipsFilter(1).Keep(path));
  EXPECT_FALSE(MaxSkipsFilter(0).Keep(path));
}

TEST_F(FiltersTest, BalancedLoad) {
  LearningPath path = MakePath();  // non-skip loads: 2 and 1
  EXPECT_TRUE(BalancedLoadFilter(1).Keep(path));
  EXPECT_FALSE(BalancedLoadFilter(0).Keep(path));
  // All-skip path is trivially balanced.
  LearningPath idle(Term(Season::kFall, 2012), catalog_.NewCourseSet());
  idle.AppendStep(Term(Season::kFall, 2012), Bits({}));
  EXPECT_TRUE(BalancedLoadFilter(0).Keep(idle));
}

TEST_F(FiltersTest, AllOfCombines) {
  LearningPath path = MakePath();
  AllOfFilter pass({std::make_shared<MaxSkipsFilter>(1),
                    std::make_shared<BalancedLoadFilter>(1)});
  AllOfFilter fail({std::make_shared<MaxSkipsFilter>(1),
                    std::make_shared<BalancedLoadFilter>(0)});
  EXPECT_TRUE(pass.Keep(path));
  EXPECT_FALSE(fail.Keep(path));
  EXPECT_NE(pass.Describe().find("all of"), std::string::npos);
}

TEST_F(FiltersTest, FilterPathsKeepsOrder) {
  LearningPath keep1 = MakePath();
  LearningPath drop(Term(Season::kFall, 2012), catalog_.NewCourseSet());
  drop.AppendStep(Term(Season::kFall, 2012), Bits({}));
  drop.AppendStep(Term(Season::kSpring, 2013), Bits({}));
  LearningPath keep2 = MakePath();
  MaxSkipsFilter filter(1);
  std::vector<LearningPath> kept =
      FilterPaths({keep1, drop, keep2}, filter);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_TRUE(kept[0] == keep1);
  EXPECT_TRUE(kept[1] == keep2);
}

}  // namespace
}  // namespace coursenav

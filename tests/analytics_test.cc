#include "graph/analytics.h"

#include <gtest/gtest.h>

#include "core/deadline_generator.h"
#include "core/goal_generator.h"
#include "requirements/expr_goal.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::Figure3Fixture;

TEST(AnalyticsTest, EmptyGraph) {
  Figure3Fixture fix;
  LearningGraph graph;
  GraphAnalytics analytics = AnalyzeLearningGraph(graph, fix.catalog);
  EXPECT_EQ(analytics.goal_path_count, 0u);
}

TEST(AnalyticsTest, HandBuiltGraphCounts) {
  Figure3Fixture fix;
  auto bits = [&](std::initializer_list<int> ids) {
    DynamicBitset b(fix.catalog.size());
    for (int id : ids) b.set(id);
    return b;
  };
  // root -> {11A} -> goal ; root -> {29A} -> (non-goal leaf)
  LearningGraph graph;
  NodeId root = graph.AddRoot(fix.fall11, bits({}), bits({0, 1}));
  NodeId a = graph.AddChild(root, bits({0}), bits({0}), bits({}));
  graph.AddChild(root, bits({1}), bits({1}), bits({}));
  graph.MarkGoal(a);

  GraphAnalytics analytics = AnalyzeLearningGraph(graph, fix.catalog);
  EXPECT_EQ(analytics.goal_path_count, 1u);
  EXPECT_EQ(analytics.course_path_counts[0], 1u);  // 11A on the goal path
  EXPECT_EQ(analytics.course_path_counts[1], 0u);  // 29A only on dead path
  EXPECT_EQ(analytics.length_histogram.at(1), 1u);
  EXPECT_DOUBLE_EQ(analytics.average_load_by_term.at(fix.fall11.index()),
                   1.0);
  EXPECT_DOUBLE_EQ(analytics.CriticalityOf(0), 1.0);
  EXPECT_DOUBLE_EQ(analytics.CriticalityOf(1), 0.0);
}

TEST(AnalyticsTest, Figure3GoalGraph) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  auto result = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                        fix.FreshStudent(), fix.spring13,
                                        **goal, options);
  ASSERT_TRUE(result.ok());
  GraphAnalytics analytics =
      AnalyzeLearningGraph(result->graph, fix.catalog);
  EXPECT_EQ(analytics.goal_path_count,
            static_cast<uint64_t>(result->stats.goal_paths));
  // Every goal path must take all three courses.
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(analytics.CriticalityOf(c), 1.0) << c;
  }
  // Criticality ordering is well-defined and complete.
  EXPECT_EQ(analytics.CoursesByCriticality().size(), 3u);
  // Histogram sums to the goal-path count.
  uint64_t histogram_total = 0;
  for (const auto& [length, count] : analytics.length_histogram) {
    histogram_total += count;
  }
  EXPECT_EQ(histogram_total, analytics.goal_path_count);
}

TEST(AnalyticsTest, ReportMentionsCourses) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  auto result = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                        fix.FreshStudent(), fix.spring13,
                                        **goal, options);
  ASSERT_TRUE(result.ok());
  GraphAnalytics analytics =
      AnalyzeLearningGraph(result->graph, fix.catalog);
  std::string report = analytics.ToString(fix.catalog);
  EXPECT_NE(report.find("goal paths:"), std::string::npos);
  EXPECT_NE(report.find("11A"), std::string::npos);
}


TEST(ExtractGoalSubgraphTest, StripsDeadBranches) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto result = GenerateDeadlineDrivenPaths(
      fix.catalog, fix.schedule, fix.FreshStudent(), fix.spring13, options);
  ASSERT_TRUE(result.ok());
  // Figure 3: nine nodes, one dead-end branch (n3 -> n6).
  LearningGraph trimmed = ExtractGoalSubgraph(result->graph);
  EXPECT_EQ(trimmed.num_nodes(), 7);  // 9 minus the n3/n6 dead branch
  EXPECT_EQ(trimmed.GoalNodes().size(), 2u);
  // Every leaf of the trimmed graph is a goal node.
  for (NodeId leaf : trimmed.LeafNodes()) {
    EXPECT_TRUE(trimmed.node(leaf).is_goal);
  }
  // Paths survive intact and valid.
  for (NodeId leaf : trimmed.GoalNodes()) {
    LearningPath path = LearningPath::FromGraph(trimmed, leaf);
    EXPECT_TRUE(path.Validate(fix.catalog, fix.schedule).ok());
  }
}

TEST(ExtractGoalSubgraphTest, GoalAnalyticsUnchanged) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A", "29A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  auto result = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                        fix.FreshStudent(), fix.spring13,
                                        **goal, options);
  ASSERT_TRUE(result.ok());
  LearningGraph trimmed = ExtractGoalSubgraph(result->graph);
  GraphAnalytics before = AnalyzeLearningGraph(result->graph, fix.catalog);
  GraphAnalytics after = AnalyzeLearningGraph(trimmed, fix.catalog);
  EXPECT_EQ(before.goal_path_count, after.goal_path_count);
  EXPECT_EQ(before.course_path_counts, after.course_path_counts);
  EXPECT_LE(trimmed.num_nodes(), result->graph.num_nodes());
}

TEST(ExtractGoalSubgraphTest, NoGoalsYieldsEmptyGraph) {
  Figure3Fixture fix;
  auto bits = [&](std::initializer_list<int> ids) {
    DynamicBitset b(fix.catalog.size());
    for (int id : ids) b.set(id);
    return b;
  };
  LearningGraph graph;
  NodeId root = graph.AddRoot(fix.fall11, bits({}), bits({0}));
  graph.AddChild(root, bits({0}), bits({0}), bits({}));
  LearningGraph trimmed = ExtractGoalSubgraph(graph);
  EXPECT_EQ(trimmed.num_nodes(), 0);
  EXPECT_EQ(ExtractGoalSubgraph(LearningGraph()).num_nodes(), 0);
}

}  // namespace
}  // namespace coursenav

#include "service/robustness.h"

#include <gtest/gtest.h>

#include "core/ranked_generator.h"
#include "data/brandeis_cs.h"
#include "requirements/expr_goal.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::Figure3Fixture;

TEST(ScheduleCloneTest, CloneIsDeepAndRemovable) {
  Figure3Fixture fix;
  OfferingSchedule copy = fix.schedule.Clone();
  EXPECT_TRUE(copy.IsOffered(fix.c21a, Term(Season::kSpring, 2012)));
  copy.RemoveOffering(fix.c21a, Term(Season::kSpring, 2012));
  EXPECT_FALSE(copy.IsOffered(fix.c21a, Term(Season::kSpring, 2012)));
  // The original is untouched.
  EXPECT_TRUE(fix.schedule.IsOffered(fix.c21a, Term(Season::kSpring, 2012)));
  // Removing a non-existent offering is a no-op.
  copy.RemoveOffering(fix.c21a, Term(Season::kFall, 2030));
}

TEST(RobustnessTest, IdentifiesSinglePointsOfFailure) {
  // Figure 3 scenario, goal = all three courses by Spring'13. 21A is
  // offered exactly once (Spring'12): cancelling it strands every plan.
  // 11A and 29A each have a Fall'12 backup... but taking 11A later than
  // Fall'11 leaves no semester for 21A, so 11A@F11 is also critical;
  // 29A@F11 has the Fall'12 alternative.
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());

  LearningPath plan(fix.fall11, fix.catalog.NewCourseSet());
  DynamicBitset first(fix.catalog.size());
  first.set(fix.c11a);
  first.set(fix.c29a);
  plan.AppendStep(fix.fall11, first);
  DynamicBitset second(fix.catalog.size());
  second.set(fix.c21a);
  plan.AppendStep(fix.fall11 + 1, second);

  auto report = AnalyzePlanRobustness(fix.catalog, fix.schedule, plan,
                                      **goal, fix.spring13, options);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->baseline_paths, 0u);
  ASSERT_EQ(report->dependencies.size(), 3u);

  auto find = [&](CourseId course) -> const OfferingDependency& {
    for (const OfferingDependency& dep : report->dependencies) {
      if (dep.course == course) return dep;
    }
    static OfferingDependency none;
    return none;
  };
  EXPECT_EQ(find(fix.c21a).alternative_paths, 0u);
  EXPECT_EQ(find(fix.c11a).alternative_paths, 0u);
  EXPECT_GT(find(fix.c29a).alternative_paths, 0u);

  std::vector<OfferingDependency> spof = report->SinglePointsOfFailure();
  EXPECT_EQ(spof.size(), 2u);

  std::string text = report->ToString(fix.catalog);
  EXPECT_NE(text.find("single point of failure"), std::string::npos);
  EXPECT_NE(text.find("29A"), std::string::npos);
}

TEST(RobustnessTest, SortedMostFragileFirst) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  TimeRanking ranking;
  auto ranked = GenerateRankedPaths(fix.catalog, fix.schedule,
                                    fix.FreshStudent(), fix.spring13, **goal,
                                    ranking, 1, options);
  ASSERT_TRUE(ranked.ok());
  ASSERT_FALSE(ranked->paths.empty());
  auto report = AnalyzePlanRobustness(fix.catalog, fix.schedule,
                                      ranked->paths[0], **goal, fix.spring13,
                                      options);
  ASSERT_TRUE(report.ok());
  for (size_t i = 1; i < report->dependencies.size(); ++i) {
    EXPECT_LE(report->dependencies[i - 1].alternative_paths,
              report->dependencies[i].alternative_paths);
  }
}

TEST(RobustnessTest, RejectsInvalidOrNonGoalPlans) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());

  // Plan that does not reach the goal.
  LearningPath partial(fix.fall11, fix.catalog.NewCourseSet());
  DynamicBitset only11(fix.catalog.size());
  only11.set(fix.c11a);
  partial.AppendStep(fix.fall11, only11);
  EXPECT_TRUE(AnalyzePlanRobustness(fix.catalog, fix.schedule, partial,
                                    **goal, fix.spring13, options)
                  .status()
                  .IsInvalidArgument());

  // Infeasible plan (21A without its prerequisite).
  LearningPath bogus(fix.fall11, fix.catalog.NewCourseSet());
  DynamicBitset illegal(fix.catalog.size());
  illegal.set(fix.c21a);
  bogus.AppendStep(fix.fall11, illegal);
  EXPECT_TRUE(AnalyzePlanRobustness(fix.catalog, fix.schedule, bogus, **goal,
                                    fix.spring13, options)
                  .status()
                  .IsFailedPrecondition());
}

TEST(RobustnessTest, BrandeisPlanHasAlternativesForElectives) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  ExplorationOptions options;
  EnrollmentStatus start{data::StartTermForSpan(4),
                         dataset.catalog.NewCourseSet()};
  TimeRanking ranking;
  auto ranked = GenerateRankedPaths(dataset.catalog, dataset.schedule, start,
                                    data::EvaluationEndTerm(),
                                    *dataset.cs_major, ranking, 1, options);
  ASSERT_TRUE(ranked.ok());
  ASSERT_FALSE(ranked->paths.empty());
  auto report = AnalyzePlanRobustness(
      dataset.catalog, dataset.schedule, ranked->paths[0], *dataset.cs_major,
      data::EvaluationEndTerm(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->dependencies.size(), 12u);  // 12 elected offerings
  // At least some offering must have alternatives (31 electives to swap).
  EXPECT_GT(report->dependencies.back().alternative_paths, 0u);
}

}  // namespace
}  // namespace coursenav

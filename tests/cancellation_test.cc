// Cooperative-cancellation tests: CancellationToken / DeadlineBudget
// semantics, and end-to-end cancellation of running explorations — both
// pre-cancelled (deterministic "stops within one expansion") and cancelled
// mid-flight from another thread.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "core/counting.h"
#include "core/goal_generator.h"
#include "data/brandeis_cs.h"
#include "service/session.h"
#include "tests/test_util.h"
#include "util/cancellation.h"

namespace coursenav {
namespace {

TEST(CancellationTokenTest, DefaultTokenIsInert) {
  CancellationToken token;
  EXPECT_FALSE(token.can_cancel());
  token.RequestCancel();  // no-op, must not crash
  EXPECT_FALSE(token.IsCancelled());
}

TEST(CancellationTokenTest, CopiesShareTheFlag) {
  CancellationToken token = CancellationToken::Cancellable();
  CancellationToken copy = token;
  EXPECT_TRUE(copy.can_cancel());
  EXPECT_FALSE(copy.IsCancelled());
  token.RequestCancel();
  EXPECT_TRUE(copy.IsCancelled());
  token.Reset();
  EXPECT_FALSE(copy.IsCancelled());
}

TEST(DeadlineBudgetTest, UnlimitedBudgetStaysOk) {
  DeadlineBudget budget;  // no deadline, inert token
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(budget.Check().ok());
  EXPECT_TRUE(budget.CheckNow().ok());
  EXPECT_TRUE(std::isinf(budget.RemainingSeconds()));
}

TEST(DeadlineBudgetTest, ExpiredDeadlineIsSticky) {
  DeadlineBudget budget(1e-9);
  Status first = budget.CheckNow();
  EXPECT_TRUE(first.IsDeadlineExceeded()) << first.ToString();
  // Sticky: every later check (amortized or forced) repeats the verdict.
  EXPECT_TRUE(budget.Check().IsDeadlineExceeded());
  EXPECT_TRUE(budget.CheckNow().IsDeadlineExceeded());
  EXPECT_EQ(budget.RemainingSeconds(), 0.0);
}

TEST(DeadlineBudgetTest, CancellationObservedOnEveryCheck) {
  CancellationToken token = CancellationToken::Cancellable();
  DeadlineBudget budget(/*max_seconds=*/3600.0, token);
  EXPECT_TRUE(budget.Check().ok());
  token.RequestCancel();
  // The cancel flag is polled on every Check(), not only on the amortized
  // clock reads, so the very next check observes it.
  EXPECT_TRUE(budget.Check().IsCancelled());
  EXPECT_TRUE(budget.Check().IsCancelled());  // and it is sticky
}

TEST(CancellationTest, PreCancelledGenerationStopsWithinOneExpansion) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  ExplorationOptions options;
  options.cancel = CancellationToken::Cancellable();
  options.cancel.RequestCancel();
  EnrollmentStatus start{data::StartTermForSpan(6),
                         dataset.catalog.NewCourseSet()};
  auto result = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                        start, data::EvaluationEndTerm(),
                                        *dataset.cs_major, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->termination.IsCancelled())
      << result->termination.ToString();
  // Cancellation fires at the first budget check: at most the root and one
  // expansion's first child exist.
  EXPECT_LE(result->graph.num_nodes(), 2);
  EXPECT_EQ(testing_util::StructureErrors(result->graph), "");
}

TEST(CancellationTest, PreCancelledCountingFailsCleanly) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  ExplorationOptions options;
  options.cancel = CancellationToken::Cancellable();
  options.cancel.RequestCancel();
  EnrollmentStatus start{data::StartTermForSpan(5),
                         dataset.catalog.NewCourseSet()};
  auto counted =
      CountGoalDrivenPaths(dataset.catalog, dataset.schedule, start,
                           data::EvaluationEndTerm(), *dataset.cs_major,
                           options);
  EXPECT_TRUE(counted.status().IsCancelled()) << counted.status().ToString();
}

TEST(CancellationTest, MidFlightCancelStopsARunningGeneration) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  ExplorationOptions options;
  options.cancel = CancellationToken::Cancellable();
  // No other limits: without the cancel this span-7 exploration would blow
  // up for a very long time.
  EnrollmentStatus start{data::StartTermForSpan(7),
                         dataset.catalog.NewCourseSet()};

  Result<GenerationResult> result = Status::Internal("not run");
  std::thread worker([&] {
    result = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                     start, data::EvaluationEndTerm(),
                                     *dataset.cs_major, options);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  options.cancel.RequestCancel();
  worker.join();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->termination.IsCancelled())
      << result->termination.ToString();
  EXPECT_GE(result->graph.num_nodes(), 1);
  EXPECT_EQ(testing_util::StructureErrors(result->graph), "");
  EXPECT_EQ(testing_util::StatsErrors(result->graph, result->stats), "");
}

TEST(CancellationTest, SessionQueriesAreCancellableAndRearmable) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  ExplorationSession session(&dataset.catalog, &dataset.schedule,
                             dataset.cs_major,
                             {data::StartTermForSpan(4),
                              dataset.catalog.NewCourseSet()},
                             data::EvaluationEndTerm());
  // Sessions always carry a live token, even when the caller's options did
  // not provide one.
  ASSERT_TRUE(session.cancel_token().can_cancel());

  session.cancel_token().RequestCancel();
  Result<uint64_t> cancelled = session.RemainingGoalPaths();
  EXPECT_TRUE(cancelled.status().IsCancelled())
      << cancelled.status().ToString();

  // Re-arming lets the same session keep serving.
  session.ResetCancellation();
  Result<uint64_t> counted = session.RemainingGoalPaths();
  ASSERT_TRUE(counted.ok()) << counted.status().ToString();
  EXPECT_GT(*counted, 0u);
}

}  // namespace
}  // namespace coursenav

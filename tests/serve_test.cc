// Serving-layer tests: wire framing, envelope validation, admission-queue
// bounds and EDF ordering, server lifecycle (start → serve → drain →
// shutdown), per-tenant quota shedding, resource clamping with degraded
// answers, and the client's jittered retry loop. Socket tests skip
// gracefully when the sandbox refuses loopback sockets.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/brandeis_cs.h"
#include "serve/admission.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/socket_server.h"
#include "util/json.h"
#include "util/status.h"

namespace coursenav::serve {
namespace {

const data::BrandeisDataset& Dataset() {
  static const data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  return dataset;
}

/// A small deadline-driven exploration document (2-semester horizon,
/// bounded nodes) that executes in a few milliseconds.
JsonValue TinyRequestDoc() {
  JsonValue::Object start;
  start["term"] = JsonValue("Spring 2015");
  JsonValue::Object limits;
  limits["max_nodes"] = JsonValue(static_cast<int64_t>(5000));
  JsonValue::Object options;
  options["limits"] = JsonValue(std::move(limits));
  JsonValue::Object request;
  request["start"] = JsonValue(std::move(start));
  request["end_term"] = JsonValue("Fall 2015");
  request["type"] = JsonValue("deadline");
  request["options"] = JsonValue(std::move(options));
  return JsonValue(std::move(request));
}

/// The 6-semester blow-up: exhausts any reasonable node budget.
JsonValue HeavyRequestDoc() {
  JsonValue::Object start;
  start["term"] = JsonValue("Fall 2012");
  JsonValue::Object request;
  request["start"] = JsonValue(std::move(start));
  request["end_term"] = JsonValue("Fall 2015");
  request["type"] = JsonValue("deadline");
  return JsonValue(std::move(request));
}

std::string TinyPayload(std::string_view tenant, std::string_view id,
                        double deadline_ms = 2000.0) {
  return MakeRequestEnvelope(tenant, id, deadline_ms, TinyRequestDoc())
      .Dump();
}

std::shared_ptr<Ticket> MakeTicket(std::string tenant,
                                   double deadline_seconds) {
  auto ticket = std::make_shared<Ticket>();
  ticket->tenant = std::move(tenant);
  ticket->deadline_seconds = deadline_seconds;
  return ticket;
}

TEST(FramingTest, RoundTripsPayload) {
  std::string frame = EncodeFrame("hello");
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 5);
  unsigned char header[kFrameHeaderBytes];
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
    header[i] = static_cast<unsigned char>(frame[i]);
  }
  Result<size_t> length = DecodeFrameHeader(header, kDefaultMaxFrameBytes);
  ASSERT_TRUE(length.ok()) << length.status().ToString();
  EXPECT_EQ(*length, 5u);
  EXPECT_EQ(frame.substr(kFrameHeaderBytes), "hello");
}

TEST(FramingTest, OversizedHeaderIsRejectedWithoutReading) {
  std::string frame = EncodeFrame(std::string(4096, 'x'));
  unsigned char header[kFrameHeaderBytes];
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
    header[i] = static_cast<unsigned char>(frame[i]);
  }
  Result<size_t> length = DecodeFrameHeader(header, 1024);
  ASSERT_FALSE(length.ok());
  EXPECT_TRUE(length.status().IsInvalidArgument());
}

TEST(EnvelopeTest, MakeAndParseRoundTrip) {
  JsonValue doc = MakeRequestEnvelope("alice", "req-1", 1500.0,
                                      TinyRequestDoc(), true, true);
  Result<RequestEnvelope> envelope = ParseRequestEnvelope(doc);
  ASSERT_TRUE(envelope.ok()) << envelope.status().ToString();
  EXPECT_EQ(envelope->tenant, "alice");
  EXPECT_EQ(envelope->request_id, "req-1");
  EXPECT_EQ(envelope->deadline_ms, 1500.0);
  ASSERT_TRUE(envelope->degrade.has_value());
  EXPECT_TRUE(*envelope->degrade);
  EXPECT_TRUE(envelope->full_payload);
  EXPECT_TRUE(envelope->request.is_object());
}

TEST(EnvelopeTest, BadTenantAndUnknownKeysAreRejected) {
  for (const char* tenant : {"", "has space", "way/slash"}) {
    JsonValue doc = MakeRequestEnvelope(tenant, "r", 0.0, TinyRequestDoc());
    EXPECT_FALSE(ParseRequestEnvelope(doc).ok()) << tenant;
  }
  JsonValue doc = MakeRequestEnvelope("ok", "r", 0.0, TinyRequestDoc());
  JsonValue::Object object = doc.object();
  object["surprise"] = JsonValue(true);
  EXPECT_FALSE(ParseRequestEnvelope(JsonValue(std::move(object))).ok());
}

TEST(EnvelopeTest, ResponseJsonRoundTrip) {
  ResponseEnvelope response;
  response.tenant = "alice";
  response.request_id = "r-9";
  response.outcome = ResponseOutcome::kOverloaded;
  response.status = Status::ResourceExhausted("shed: queue-full");
  response.retry_after_ms = 125.0;
  response.queue_wait_ms = 3.5;
  response.served_seq = 17;
  Result<ResponseEnvelope> parsed = ResponseEnvelope::FromJson(
      response.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->tenant, "alice");
  EXPECT_EQ(parsed->outcome, ResponseOutcome::kOverloaded);
  EXPECT_TRUE(parsed->status.IsResourceExhausted());
  EXPECT_EQ(parsed->retry_after_ms, 125.0);
  EXPECT_EQ(parsed->served_seq, 17);
}

TEST(EnvelopeTest, TraceFieldsRoundTripThroughTheWireFormat) {
  JsonValue doc = MakeRequestEnvelope("alice", "req-2", 1000.0,
                                      TinyRequestDoc(), std::nullopt, false,
                                      /*want_trace=*/true, "trace-abc.1");
  Result<RequestEnvelope> envelope = ParseRequestEnvelope(doc);
  ASSERT_TRUE(envelope.ok()) << envelope.status().ToString();
  EXPECT_EQ(envelope->trace_id, "trace-abc.1");
  EXPECT_TRUE(envelope->want_trace);

  // Omitted trace fields parse to their defaults.
  JsonValue plain = MakeRequestEnvelope("alice", "req-3", 0.0,
                                        TinyRequestDoc());
  Result<RequestEnvelope> no_trace = ParseRequestEnvelope(plain);
  ASSERT_TRUE(no_trace.ok());
  EXPECT_TRUE(no_trace->trace_id.empty());
  EXPECT_FALSE(no_trace->want_trace);
}

TEST(EnvelopeTest, HostileTraceIdsAreRejectedAtParse) {
  for (const char* trace_id :
       {"has space", "new\nline", "quo\"te", "semi;colon"}) {
    JsonValue doc = MakeRequestEnvelope("alice", "r", 0.0, TinyRequestDoc(),
                                        std::nullopt, false, false, trace_id);
    EXPECT_FALSE(ParseRequestEnvelope(doc).ok()) << trace_id;
  }
  const std::string too_long(65, 'a');
  JsonValue doc = MakeRequestEnvelope("alice", "r", 0.0, TinyRequestDoc(),
                                      std::nullopt, false, false, too_long);
  EXPECT_FALSE(ParseRequestEnvelope(doc).ok());
}

TEST(EnvelopeTest, ResponseTraceRoundTrip) {
  ResponseEnvelope response;
  response.tenant = "alice";
  response.request_id = "r-10";
  response.outcome = ResponseOutcome::kOk;
  response.trace_id = "srv-42";
  JsonValue::Object span;
  span["span_id"] = JsonValue(static_cast<int64_t>(1));
  span["parent_id"] = JsonValue(static_cast<int64_t>(0));
  span["name"] = JsonValue("serve/request");
  JsonValue::Array spans;
  spans.emplace_back(std::move(span));
  response.trace = JsonValue(std::move(spans));

  Result<ResponseEnvelope> parsed =
      ResponseEnvelope::FromJson(response.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->trace_id, "srv-42");
  ASSERT_TRUE(parsed->trace.is_array());
  ASSERT_EQ(parsed->trace.array().size(), 1u);
  EXPECT_EQ(*parsed->trace.array()[0].Get("name")->GetString(),
            "serve/request");

  // Without opt-in, the trace key never appears on the wire.
  ResponseEnvelope bare;
  bare.tenant = "alice";
  bare.request_id = "r-11";
  bare.outcome = ResponseOutcome::kOk;
  bare.trace_id = "srv-43";
  EXPECT_FALSE(bare.ToJson().Has("trace"));
  Result<ResponseEnvelope> bare_parsed =
      ResponseEnvelope::FromJson(bare.ToJson());
  ASSERT_TRUE(bare_parsed.ok());
  EXPECT_TRUE(bare_parsed->trace.is_null());
  EXPECT_EQ(bare_parsed->trace_id, "srv-43");
}

TEST(AdmissionQueueTest, BoundsShedWithRetryHints) {
  AdmissionConfig config;
  config.max_queue_depth = 2;
  config.max_queued_per_tenant = 2;
  config.max_tenants = 2;
  AdmissionQueue queue(config);
  EXPECT_EQ(queue.Admit(MakeTicket("a", 1.0)).verdict,
            AdmitVerdict::kAdmitted);
  EXPECT_EQ(queue.Admit(MakeTicket("b", 1.0)).verdict,
            AdmitVerdict::kAdmitted);
  AdmissionQueue::AdmitResult full = queue.Admit(MakeTicket("a", 1.0));
  EXPECT_EQ(full.verdict, AdmitVerdict::kQueueFull);
  EXPECT_GT(full.retry_after_ms, 0.0);
  EXPECT_EQ(queue.Admit(MakeTicket("c", 1.0)).verdict,
            AdmitVerdict::kTenantTableFull);
  EXPECT_EQ(queue.depth(), 2);
}

TEST(AdmissionQueueTest, PerTenantQueueAndInflightBounds) {
  AdmissionConfig config;
  config.max_queue_depth = 16;
  config.max_queued_per_tenant = 1;
  config.max_inflight_per_tenant = 1;
  AdmissionQueue queue(config);
  EXPECT_EQ(queue.Admit(MakeTicket("a", 1.0)).verdict,
            AdmitVerdict::kAdmitted);
  EXPECT_EQ(queue.Admit(MakeTicket("a", 1.0)).verdict,
            AdmitVerdict::kTenantQueueFull);
  // Move the queued ticket in-flight; the tenant is still saturated.
  std::shared_ptr<Ticket> running = queue.Pop();
  ASSERT_NE(running, nullptr);
  EXPECT_EQ(queue.inflight(), 1);
  EXPECT_EQ(queue.Admit(MakeTicket("a", 1.0)).verdict,
            AdmitVerdict::kTenantInflightFull);
  // Completion frees the quota.
  queue.Complete(running, 0.01);
  EXPECT_EQ(queue.Admit(MakeTicket("a", 1.0)).verdict,
            AdmitVerdict::kAdmitted);
}

TEST(AdmissionQueueTest, PopIsEarliestDeadlineFirst) {
  AdmissionQueue queue(AdmissionConfig{});
  auto late = MakeTicket("a", 8.0);
  auto soon = MakeTicket("b", 0.5);
  auto middle = MakeTicket("c", 3.0);
  ASSERT_EQ(queue.Admit(late).verdict, AdmitVerdict::kAdmitted);
  ASSERT_EQ(queue.Admit(soon).verdict, AdmitVerdict::kAdmitted);
  ASSERT_EQ(queue.Admit(middle).verdict, AdmitVerdict::kAdmitted);
  EXPECT_EQ(queue.Pop()->tenant, "b");
  EXPECT_EQ(queue.Pop()->tenant, "c");
  EXPECT_EQ(queue.Pop()->tenant, "a");
}

TEST(AdmissionQueueTest, CloseShedsNewWorkAndDrainsQueued) {
  AdmissionQueue queue(AdmissionConfig{});
  ASSERT_EQ(queue.Admit(MakeTicket("a", 1.0)).verdict,
            AdmitVerdict::kAdmitted);
  queue.CloseForAdmission();
  EXPECT_EQ(queue.Admit(MakeTicket("a", 1.0)).verdict,
            AdmitVerdict::kNotServing);
  EXPECT_NE(queue.Pop(), nullptr);  // Already-queued work still drains.
  EXPECT_EQ(queue.Pop(), nullptr);  // Then workers are told to exit.
}

TEST(AdmissionQueueTest, EvictReturnsQueuedTickets) {
  AdmissionQueue queue(AdmissionConfig{});
  ASSERT_EQ(queue.Admit(MakeTicket("a", 1.0)).verdict,
            AdmitVerdict::kAdmitted);
  ASSERT_EQ(queue.Admit(MakeTicket("b", 2.0)).verdict,
            AdmitVerdict::kAdmitted);
  std::vector<std::shared_ptr<Ticket>> evicted = queue.Evict();
  EXPECT_EQ(evicted.size(), 2u);
  EXPECT_EQ(queue.depth(), 0);
}

TEST(ServerTest, LifecycleServesThenDrainsClean) {
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule);
  EXPECT_EQ(server.state(), ExplorationServer::State::kIdle);
  server.Start();
  EXPECT_EQ(server.state(), ExplorationServer::State::kServing);

  ResponseEnvelope response = server.HandleRequest(TinyPayload("alice", "r1"));
  EXPECT_EQ(response.outcome, ResponseOutcome::kOk);
  EXPECT_EQ(response.tenant, "alice");
  EXPECT_EQ(response.request_id, "r1");
  EXPECT_GE(response.served_seq, 0);
  EXPECT_TRUE(response.result.is_object());

  EXPECT_TRUE(server.Drain(5.0).ok());
  EXPECT_EQ(server.state(), ExplorationServer::State::kStopped);
  // Requests after drain shed with a structured overload answer.
  ResponseEnvelope late = server.HandleRequest(TinyPayload("alice", "r2"));
  EXPECT_EQ(late.outcome, ResponseOutcome::kOverloaded);

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 2);
  EXPECT_EQ(stats.ok, 1);
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.tenants.at("alice").completed_total, 1);
}

TEST(ServerTest, MalformedAndOversizedRequestsAreRejected) {
  ServerConfig config;
  config.max_request_bytes = 512;
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule, config);
  server.Start();
  EXPECT_EQ(server.HandleRequest("this is not json").outcome,
            ResponseOutcome::kRejected);
  EXPECT_EQ(server.HandleRequest("[1, 2, 3]").outcome,
            ResponseOutcome::kRejected);
  EXPECT_EQ(server.HandleRequest(std::string(600, 'x')).outcome,
            ResponseOutcome::kRejected);
  // Unknown fields inside the exploration document are schema errors.
  JsonValue::Object request = TinyRequestDoc().object();
  request["typo_field"] = JsonValue(1.0);
  std::string payload =
      MakeRequestEnvelope("alice", "r", 0.0, JsonValue(std::move(request)))
          .Dump();
  ResponseEnvelope response = server.HandleRequest(payload);
  EXPECT_EQ(response.outcome, ResponseOutcome::kRejected);
  EXPECT_TRUE(response.status.IsInvalidArgument());

  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.rejected, 4);
  EXPECT_EQ(stats.submitted, 4);
  EXPECT_TRUE(server.Drain(5.0).ok());
}

TEST(ServerTest, TenantQuotasShedConcurrentFlood) {
  ServerConfig config;
  config.num_workers = 1;
  config.admission.max_queued_per_tenant = 1;
  config.admission.max_inflight_per_tenant = 1;
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule, config);
  server.Start();

  constexpr int kSenders = 8;
  std::atomic<int> overloaded{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> senders;
  senders.reserve(kSenders);
  for (int i = 0; i < kSenders; ++i) {
    senders.emplace_back([&, i] {
      ResponseEnvelope response = server.HandleRequest(
          TinyPayload("flood", "f" + std::to_string(i)));
      ++answered;
      if (response.outcome == ResponseOutcome::kOverloaded) {
        ++overloaded;
        EXPECT_GT(response.retry_after_ms, 0.0);
        EXPECT_TRUE(response.status.IsResourceExhausted());
      }
    });
  }
  for (std::thread& sender : senders) sender.join();
  EXPECT_EQ(answered.load(), kSenders);
  // At most 2 requests fit in the tenant's queue+inflight quota at once;
  // with 8 simultaneous senders some must shed.
  EXPECT_GE(overloaded.load(), 1);
  EXPECT_TRUE(server.Drain(5.0).ok());
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, kSenders);
  EXPECT_EQ(stats.shed, overloaded.load());
  EXPECT_EQ(stats.shed + stats.ok + stats.degraded + stats.timeout,
            stats.submitted);
}

TEST(ServerTest, ResourceClampsDegradeHeavyRequests) {
  ServerConfig config;
  config.max_nodes_per_request = 2000;  // Tiny tenant-isolation budget.
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule, config);
  server.Start();
  std::string payload =
      MakeRequestEnvelope("greedy", "g1", 5000.0, HeavyRequestDoc()).Dump();
  ResponseEnvelope response = server.HandleRequest(payload);
  EXPECT_EQ(response.outcome, ResponseOutcome::kDegraded);
  ASSERT_TRUE(response.degradation.has_value());
  EXPECT_TRUE(response.degradation->degraded);
  EXPECT_TRUE(server.Drain(5.0).ok());
}

TEST(ServerTest, DegradeOffYieldsTimeoutWithPartialSummary) {
  ServerConfig config;
  config.max_nodes_per_request = 2000;
  config.degrade_by_default = false;
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule, config);
  server.Start();
  std::string payload =
      MakeRequestEnvelope("greedy", "g1", 5000.0, HeavyRequestDoc()).Dump();
  ResponseEnvelope response = server.HandleRequest(payload);
  EXPECT_EQ(response.outcome, ResponseOutcome::kTimeout);
  EXPECT_FALSE(response.degradation.has_value());
  EXPECT_TRUE(server.Drain(5.0).ok());
}

TEST(ServerTest, ShutdownCancelsInflightWork) {
  ServerConfig config;
  config.num_workers = 1;
  config.max_seconds_per_request = 30.0;
  config.admission.max_deadline_seconds = 30.0;
  config.degrade_by_default = false;
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule, config);
  server.Start();
  std::thread client([&] {
    std::string payload =
        MakeRequestEnvelope("slow", "s1", 20000.0, HeavyRequestDoc()).Dump();
    ResponseEnvelope response = server.HandleRequest(payload);
    // Cancelled mid-execution (or finished as a bounded partial first).
    EXPECT_NE(response.outcome, ResponseOutcome::kFailed);
  });
  // Give the request time to be admitted and start executing.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.Shutdown();
  client.join();
  EXPECT_EQ(server.state(), ExplorationServer::State::kStopped);
}

TEST(RetryTest, HonorsRetryAfterHintAndStopsOnSuccess) {
  int calls = 0;
  TransportFn transport = [&calls](std::string_view) {
    ++calls;
    ResponseEnvelope response;
    if (calls < 3) {
      response.outcome = ResponseOutcome::kOverloaded;
      response.retry_after_ms = 40.0;
      return Result<ResponseEnvelope>(response);
    }
    response.outcome = ResponseOutcome::kOk;
    return Result<ResponseEnvelope>(response);
  };
  std::vector<double> sleeps;
  SleepFn sleep = [&sleeps](double ms) { sleeps.push_back(ms); };
  Result<RetryResult> result = CallWithRetry(transport, "x", {}, sleep);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->response.outcome, ResponseOutcome::kOk);
  EXPECT_EQ(result->attempts, 3);
  ASSERT_EQ(sleeps.size(), 2u);
  // The server's 40ms hint floors the exponential schedule; equal jitter
  // never pushes a delay past 2x its step.
  for (double ms : sleeps) {
    EXPECT_GE(ms, 20.0);
    EXPECT_LE(ms, 80.0);
  }
}

TEST(RetryTest, RejectionsAreNeverRetried) {
  int calls = 0;
  TransportFn transport = [&calls](std::string_view) {
    ++calls;
    ResponseEnvelope response;
    response.outcome = ResponseOutcome::kRejected;
    return Result<ResponseEnvelope>(response);
  };
  SleepFn sleep = [](double) {};
  Result<RetryResult> result = CallWithRetry(transport, "x", {}, sleep);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->response.outcome, ResponseOutcome::kRejected);
  EXPECT_EQ(calls, 1);
}

TEST(RetryTest, JitterIsDeterministicInTheSeed) {
  TransportFn transport = [](std::string_view) {
    ResponseEnvelope response;
    response.outcome = ResponseOutcome::kOverloaded;
    return Result<ResponseEnvelope>(response);
  };
  RetryPolicy policy;
  policy.max_attempts = 4;
  std::vector<double> first, second;
  SleepFn record_first = [&first](double ms) { first.push_back(ms); };
  SleepFn record_second = [&second](double ms) { second.push_back(ms); };
  ASSERT_TRUE(CallWithRetry(transport, "x", policy, record_first).ok());
  ASSERT_TRUE(CallWithRetry(transport, "x", policy, record_second).ok());
  EXPECT_EQ(first, second);
  policy.jitter_seed = 99;
  std::vector<double> other;
  SleepFn record_other = [&other](double ms) { other.push_back(ms); };
  ASSERT_TRUE(CallWithRetry(transport, "x", policy, record_other).ok());
  EXPECT_NE(first, other);
}

TEST(RetryTest, ExhaustedAttemptsReturnTheLastOverload) {
  TransportFn transport = [](std::string_view) {
    ResponseEnvelope response;
    response.outcome = ResponseOutcome::kOverloaded;
    response.retry_after_ms = 5.0;
    return Result<ResponseEnvelope>(response);
  };
  RetryPolicy policy;
  policy.max_attempts = 3;
  SleepFn sleep = [](double) {};
  Result<RetryResult> result = CallWithRetry(transport, "x", policy, sleep);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->response.outcome, ResponseOutcome::kOverloaded);
  EXPECT_EQ(result->attempts, 3);
}

TEST(SocketTest, RoundTripOverLoopback) {
  ExplorationServer core(&Dataset().catalog, &Dataset().schedule);
  core.Start();
  SocketServer transport(&core);
  Status started = transport.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "loopback sockets unavailable: " << started.ToString();
  }
  ASSERT_GT(transport.port(), 0);
  Result<ServeClient> client =
      ServeClient::Connect("127.0.0.1", transport.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<ResponseEnvelope> response =
      client->CallEnvelope(TinyPayload("net", "n1"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->outcome, ResponseOutcome::kOk);
  EXPECT_EQ(response->request_id, "n1");
  // A second call on the same connection works too.
  Result<ResponseEnvelope> again =
      client->CallEnvelope(TinyPayload("net", "n2"));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->outcome, ResponseOutcome::kOk);
  client->Close();
  transport.Stop();
  EXPECT_TRUE(core.Drain(5.0).ok());
  EXPECT_EQ(core.Stats().ok, 2);
}

TEST(SocketTest, OversizedFrameGetsStructuredRejection) {
  ExplorationServer core(&Dataset().catalog, &Dataset().schedule);
  core.Start();
  SocketConfig config;
  config.max_frame_bytes = 256;
  SocketServer transport(&core, config);
  Status started = transport.Start();
  if (!started.ok()) {
    GTEST_SKIP() << "loopback sockets unavailable: " << started.ToString();
  }
  Result<ServeClient> client =
      ServeClient::Connect("127.0.0.1", transport.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<ResponseEnvelope> response =
      client->CallEnvelope(std::string(1024, 'x'));
  // The server answers with a framed rejection before dropping the
  // connection.
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->outcome, ResponseOutcome::kRejected);
  transport.Stop();
  EXPECT_TRUE(core.Drain(5.0).ok());
}

}  // namespace
}  // namespace coursenav::serve

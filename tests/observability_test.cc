#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/goal_generator.h"
#include "core/stats.h"
#include "requirements/expr_goal.h"
#include "tests/test_util.h"
#include "util/json.h"

namespace coursenav {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricId;
using obs::MetricKind;
using obs::MetricRegistry;
using obs::MetricSnapshot;
using testing_util::Figure3Fixture;

TEST(MetricPrimitivesTest, CounterAndGauge) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42);

  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.UpdateMax(3);  // lower: no effect
  EXPECT_EQ(gauge.Value(), 7);
  gauge.UpdateMax(11);
  EXPECT_EQ(gauge.Value(), 11);
}

TEST(MetricPrimitivesTest, HistogramBucketing) {
  // Bucket 0 holds v < 1; bucket i holds v < 2^i; the last is unbounded.
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(int64_t{1} << 62),
            Histogram::kNumBuckets - 1);

  Histogram histogram;
  histogram.Observe(0);
  histogram.Observe(3);
  histogram.Observe(3);
  histogram.Observe(1024);
  EXPECT_EQ(histogram.Count(), 4);
  EXPECT_EQ(histogram.Sum(), 0 + 3 + 3 + 1024);
  EXPECT_EQ(histogram.BucketCount(0), 1);
  EXPECT_EQ(histogram.BucketCount(2), 2);
  EXPECT_EQ(histogram.BucketCount(11), 1);
}

TEST(MetricRegistryTest, InterningIsIdempotentAndPerKind) {
  MetricRegistry registry;
  MetricId a = registry.InternCounter("widgets_total");
  MetricId b = registry.InternCounter("widgets_total");
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(registry.counter(a), registry.counter(b));
  // The same name as a different kind is a distinct metric slot.
  MetricId g = registry.InternGauge("widgets_total");
  EXPECT_EQ(g.kind, MetricKind::kGauge);
  MetricId c = registry.InternCounter("other_total");
  EXPECT_NE(a.index, c.index);
}

TEST(MetricRegistryTest, SnapshotIsSortedAndComplete) {
  MetricRegistry registry;
  registry.GetCounter("zeta_total")->Increment(3);
  registry.GetCounter("alpha_total")->Increment(1);
  registry.GetGauge("peak")->Set(9);
  registry.GetHistogram("latency_us")->Observe(100);

  std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);
  // Counters sort by name, then gauges, then histograms.
  EXPECT_EQ(snapshot[0].name, "alpha_total");
  EXPECT_EQ(snapshot[0].value, 1);
  EXPECT_EQ(snapshot[1].name, "zeta_total");
  EXPECT_EQ(snapshot[1].value, 3);
  EXPECT_EQ(snapshot[2].name, "peak");
  EXPECT_EQ(snapshot[2].kind, MetricKind::kGauge);
  EXPECT_EQ(snapshot[3].name, "latency_us");
  EXPECT_EQ(snapshot[3].kind, MetricKind::kHistogram);
  EXPECT_EQ(snapshot[3].value, 1);  // observation count
  EXPECT_EQ(snapshot[3].sum, 100);
}

TEST(MetricRegistryTest, AccumulateIntoFoldsExactly) {
  MetricRegistry run;
  run.GetCounter("nodes_total")->Increment(5);
  run.GetGauge("peak")->Set(40);
  run.GetHistogram("latency_us")->Observe(3);
  run.GetHistogram("latency_us")->Observe(100);

  MetricRegistry global;
  global.GetCounter("nodes_total")->Increment(10);
  global.GetGauge("peak")->Set(60);

  run.AccumulateInto(&global);
  EXPECT_EQ(global.GetCounter("nodes_total")->Value(), 15);
  // Gauges propagate as UpdateMax: 40 < 60 leaves the peak alone.
  EXPECT_EQ(global.GetGauge("peak")->Value(), 60);
  Histogram* merged = global.GetHistogram("latency_us");
  EXPECT_EQ(merged->Count(), 2);
  EXPECT_EQ(merged->Sum(), 103);
  EXPECT_EQ(merged->BucketCount(Histogram::BucketIndex(3)), 1);
  EXPECT_EQ(merged->BucketCount(Histogram::BucketIndex(100)), 1);
}

TEST(PrometheusRenderTest, EmitsTypedSeriesWithPrefix) {
  MetricRegistry registry;
  registry.GetCounter("nodes_total")->Increment(7);
  registry.GetGauge("peak")->Set(3);
  Histogram* histogram = registry.GetHistogram("latency_us");
  histogram->Observe(1);
  histogram->Observe(500);

  std::string text = obs::RenderPrometheus(registry);
  EXPECT_NE(text.find("# TYPE coursenav_nodes_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("coursenav_nodes_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE coursenav_peak gauge"), std::string::npos);
  EXPECT_NE(text.find("coursenav_peak 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE coursenav_latency_us histogram"),
            std::string::npos);
  // Buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(text.find("coursenav_latency_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("coursenav_latency_us_sum 501"), std::string::npos);
  EXPECT_NE(text.find("coursenav_latency_us_count 2"), std::string::npos);
}

// Satellite regression: ToString must carry runtime_seconds and the
// pruning breakdown percentages (it silently dropped both before the
// observability refactor).
TEST(ExplorationStatsTest, ToStringIncludesRuntimeAndPruningShares) {
  ExplorationStats stats;
  stats.nodes_created = 10;
  stats.pruned_time = 4;
  stats.pruned_availability = 1;
  stats.runtime_seconds = 1.5;
  std::string text = stats.ToString();
  EXPECT_NE(text.find("runtime_seconds=1.500"), std::string::npos) << text;
  EXPECT_NE(text.find("pruned=5"), std::string::npos) << text;
  EXPECT_NE(text.find("pruned_time=4 80.0%"), std::string::npos) << text;
  EXPECT_NE(text.find("pruned_avail=1 20.0%"), std::string::npos) << text;

  // No division by zero when nothing was pruned.
  ExplorationStats clean;
  clean.runtime_seconds = 0.25;
  text = clean.ToString();
  EXPECT_NE(text.find("pruned=0"), std::string::npos) << text;
  EXPECT_NE(text.find("runtime_seconds=0.250"), std::string::npos) << text;
}

TEST(ExplorationStatsTest, FromMetricsMirrorsEveryCounter) {
  MetricRegistry registry;
  obs::ExplorationMetrics metrics(&registry);
  metrics.nodes_created = 11;
  metrics.edges_created = 12;
  metrics.nodes_expanded = 9;
  metrics.terminal_paths = 4;
  metrics.goal_paths = 3;
  metrics.dead_end_paths = 1;
  metrics.pruned_time = 8;
  metrics.pruned_availability = 2;

  ExplorationStats stats = ExplorationStats::FromMetrics(metrics, 0.5);
  EXPECT_EQ(stats.nodes_created, 11);
  EXPECT_EQ(stats.edges_created, 12);
  EXPECT_EQ(stats.nodes_expanded, 9);
  EXPECT_EQ(stats.terminal_paths, 4);
  EXPECT_EQ(stats.goal_paths, 3);
  EXPECT_EQ(stats.dead_end_paths, 1);
  EXPECT_EQ(stats.pruned_time, 8);
  EXPECT_EQ(stats.pruned_availability, 2);
  EXPECT_EQ(stats.runtime_seconds, 0.5);

  // Publish pushes the tallies into the registry's counters, and only the
  // delta since the last publish: publishing twice must not double-count.
  metrics.Publish();
  metrics.Publish();
  EXPECT_EQ(registry.GetCounter(obs::kMetricNodesCreated)->Value(), 11);
  EXPECT_EQ(registry.GetCounter(obs::kMetricPrunedTime)->Value(), 8);
  metrics.goal_paths += 2;
  metrics.Publish();
  EXPECT_EQ(registry.GetCounter(obs::kMetricGoalPaths)->Value(), 5);
}

#if COURSENAV_TRACING

TEST(TracerTest, NestedSpansCarryParentLinks) {
  obs::Tracer tracer;
  {
    obs::ScopedTracer install(&tracer);
    obs::ScopedSpan outer("outer");
    outer.AddInt("n", 1);
    {
      obs::ScopedSpan inner("inner");
      inner.AddString("tag", "x");
    }
  }
  std::vector<obs::SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);
  // Spans record on close: inner first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_id, 0);
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id);
  ASSERT_EQ(spans[0].attributes.size(), 1u);
  EXPECT_EQ(spans[0].attributes[0].key, "tag");
  EXPECT_EQ(spans[0].attributes[0].string_value, "x");
}

TEST(TracerTest, NoTracerMeansNoRecording) {
  // Without an installed tracer every span is inert; this must not crash
  // and must record nothing anywhere.
  obs::ScopedSpan span("orphan");
  span.AddInt("n", 1);
  EXPECT_FALSE(span.enabled());
}

TEST(TracerTest, BufferIsBoundedAndCountsDrops) {
  obs::Tracer tracer(/*max_spans=*/2);
  obs::ScopedTracer install(&tracer);
  for (int i = 0; i < 5; ++i) {
    obs::ScopedSpan span("s");
  }
  EXPECT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 3u);
}

TEST(TracerTest, GoalRunEmitsStageSpansAndReconcilesWithStats) {
  Figure3Fixture fix;
  Term fall12(Season::kFall, 2012);
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());

  obs::Tracer tracer;
  ExplorationStats stats;
  {
    obs::ScopedTracer install(&tracer);
    auto result = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                          fix.FreshStudent(), fall12, **goal,
                                          options);
    ASSERT_TRUE(result.ok());
    stats = result->stats;
  }

  std::vector<obs::SpanRecord> spans = tracer.Spans();
  int64_t run_span_id = 0;
  const obs::SpanRecord* prune_time = nullptr;
  const obs::SpanRecord* prune_availability = nullptr;
  bool saw_construct = false;
  bool saw_expand = false;
  for (const obs::SpanRecord& span : spans) {
    if (span.name == obs::kSpanGenerateGoal) run_span_id = span.span_id;
    if (span.name == obs::kSpanGraphConstruct) saw_construct = true;
    if (span.name == obs::kSpanExpandLoop) saw_expand = true;
    if (span.name == obs::kSpanPruneTime) prune_time = &span;
    if (span.name == obs::kSpanPruneAvailability) prune_availability = &span;
  }
  EXPECT_NE(run_span_id, 0);
  EXPECT_TRUE(saw_construct);
  EXPECT_TRUE(saw_expand);
  ASSERT_NE(prune_time, nullptr);
  ASSERT_NE(prune_availability, nullptr);

  // The stage spans' `pruned` attributes must reconcile exactly with the
  // legacy stats (they read the same counters).
  auto pruned_attribute = [](const obs::SpanRecord& span) -> int64_t {
    for (const obs::SpanAttribute& attribute : span.attributes) {
      if (attribute.key == "pruned") return attribute.int_value;
    }
    return -1;
  };
  EXPECT_EQ(pruned_attribute(*prune_time), stats.pruned_time);
  EXPECT_EQ(pruned_attribute(*prune_availability),
            stats.pruned_availability);
  EXPECT_GT(stats.pruned_availability, 0);
}

TEST(TraceExportTest, JsonLinesAreIndividuallyParseable) {
  obs::Tracer tracer;
  {
    obs::ScopedTracer install(&tracer);
    obs::ScopedSpan outer("outer");
    outer.AddInt("count", 3);
    outer.AddDouble("share", 0.5);
    outer.AddString("label", "with \"quotes\" and\nnewline");
    obs::ScopedSpan inner("inner");
  }
  std::string jsonl = obs::TraceToJsonLines(tracer);
  ASSERT_FALSE(jsonl.empty());
  size_t start = 0;
  int lines = 0;
  while (start < jsonl.size()) {
    size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string line = jsonl.substr(start, end - start);
    Result<JsonValue> parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
    EXPECT_TRUE(parsed->is_object());
    EXPECT_TRUE(parsed->Get("name").ok());
    EXPECT_TRUE(parsed->Get("span_id").ok());
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 2);
}

TEST(TraceExportTest, AggregateSpansGroupsByName) {
  obs::Tracer tracer;
  tracer.EmitSpan("stage/a", 0, 10);
  tracer.EmitSpan("stage/a", 10, 30);
  tracer.EmitSpan("stage/b", 0, 5);
  std::vector<obs::SpanAggregate> aggregates =
      obs::AggregateSpans(tracer.Spans());
  ASSERT_EQ(aggregates.size(), 2u);
  // Sorted by total time, descending.
  EXPECT_EQ(aggregates[0].name, "stage/a");
  EXPECT_EQ(aggregates[0].count, 2);
  EXPECT_EQ(aggregates[0].total_us, 40);
  EXPECT_EQ(aggregates[0].max_us, 30);
  EXPECT_EQ(aggregates[1].name, "stage/b");
  EXPECT_EQ(aggregates[1].total_us, 5);
}

#endif  // COURSENAV_TRACING

TEST(LabeledMetricsTest, LabeledNamesRenderAsPrometheusLabels) {
  MetricRegistry registry;
  registry
      .GetCounter(obs::LabeledMetricName("requests_total", "tenant", "alpha"))
      ->Increment(3);
  registry
      .GetCounter(obs::LabeledMetricName("requests_total", "tenant", "beta"))
      ->Increment(5);
  registry
      .GetHistogram(obs::LabeledMetricName("wait_us", "tenant", "alpha"))
      ->Observe(7);

  std::string text = obs::RenderPrometheus(registry);
  EXPECT_NE(text.find("coursenav_requests_total{tenant=\"alpha\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("coursenav_requests_total{tenant=\"beta\"} 5"),
            std::string::npos);
  // Labeled series sharing one base share exactly one TYPE header.
  const std::string header = "# TYPE coursenav_requests_total counter";
  const size_t first = text.find(header);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(header, first + 1), std::string::npos);
  // Histogram buckets merge the label with le.
  EXPECT_NE(
      text.find("coursenav_wait_us_bucket{tenant=\"alpha\",le=\"+Inf\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("coursenav_wait_us_count{tenant=\"alpha\"} 1"),
            std::string::npos);
}

TEST(LabeledMetricsTest, HostileLabelValuesEscapeAndRoundTrip) {
  const std::string hostile = "evil\"tenant\\with\nnewlines";
  const std::string escaped = obs::EscapePrometheusLabelValue(hostile);
  EXPECT_EQ(escaped, "evil\\\"tenant\\\\with\\nnewlines");
  EXPECT_EQ(obs::UnescapePrometheusLabelValue(escaped), hostile);

  // Rendered through the registry, the hostile value must stay on one line
  // and parse back to the original.
  MetricRegistry registry;
  registry.GetCounter(obs::LabeledMetricName("requests_total", "tenant",
                                             hostile))
      ->Increment();
  std::string text = obs::RenderPrometheus(registry);
  const std::string expected_series =
      "coursenav_requests_total{tenant=\"" + escaped + "\"} 1";
  EXPECT_NE(text.find(expected_series), std::string::npos) << text;
  // The raw newline never leaks into the exposition text: every line is a
  // comment, a series, or blank — count lines starting with the base name.
  size_t series_lines = 0;
  size_t at = 0;
  while ((at = text.find("coursenav_requests_total", at)) !=
         std::string::npos) {
    ++series_lines;
    at += 1;
  }
  EXPECT_EQ(series_lines, 2u);  // one TYPE header + one series line
}

TEST(LabeledMetricsTest, UnescapeKeepsUnknownEscapesVerbatim) {
  EXPECT_EQ(obs::UnescapePrometheusLabelValue("a\\tb"), "a\\tb");
  EXPECT_EQ(obs::UnescapePrometheusLabelValue("trailing\\"), "trailing\\");
}

// Satellite regression: the tracer's dropped-span count and the registry's
// interning-table size are exported as gauges so dashboards can alarm on
// truncated traces and label-cardinality growth.
TEST(ObservabilityHealthTest, DroppedSpansAndInterningAreGauges) {
  MetricRegistry registry;
  obs::PublishTracerHealth(17, registry);
  EXPECT_EQ(registry.GetGauge(obs::kMetricTraceDroppedSpans)->Value(), 17);
  // UpdateMax semantics: a lower publish never regresses the high-water.
  obs::PublishTracerHealth(5, registry);
  EXPECT_EQ(registry.GetGauge(obs::kMetricTraceDroppedSpans)->Value(), 17);

  registry.GetCounter("some_counter")->Increment();
  registry.GetHistogram("some_histogram")->Observe(1);
  obs::PublishRegistryHealth(registry);
  const int64_t interned =
      registry.GetGauge(obs::kMetricInternedNames)->Value();
  // dropped-spans gauge + counter + histogram at minimum; the
  // interned-names gauge itself may lag by one publish.
  EXPECT_GE(interned, 3);
  EXPECT_EQ(interned, static_cast<int64_t>(registry.InternedNameCount()) - 1);
}

TEST(MetricsJsonTest, SnapshotRendersCountersGaugesAndQuantiles) {
  MetricRegistry registry;
  registry.GetCounter("requests_total")->Increment(9);
  registry.GetGauge("depth")->Set(4);
  Histogram* histogram = registry.GetHistogram("latency_us");
  for (int i = 0; i < 90; ++i) histogram->Observe(10);
  for (int i = 0; i < 10; ++i) histogram->Observe(5000);

  JsonValue json = obs::MetricsToJson(registry.Snapshot());
  EXPECT_EQ(*json.Get("counters")->Get("requests_total")->GetInt(), 9);
  EXPECT_EQ(*json.Get("gauges")->Get("depth")->GetInt(), 4);
  const JsonValue latency = *json.Get("histograms")->Get("latency_us");
  EXPECT_EQ(*latency.Get("count")->GetInt(), 100);
  EXPECT_EQ(*latency.Get("sum")->GetInt(), 90 * 10 + 10 * 5000);
  // p50 lands in the bucket holding the 10us observations, p99 outside it.
  EXPECT_LE(*latency.Get("p50_us")->GetInt(), 16);
  EXPECT_GT(*latency.Get("p99_us")->GetInt(), 16);
}

TEST(HistogramQuantileTest, PicksBucketUpperBounds) {
  MetricRegistry registry;
  Histogram* histogram = registry.GetHistogram("h");
  EXPECT_EQ(obs::HistogramQuantile(registry.Snapshot()[0], 0.5), 0);
  for (int i = 0; i < 10; ++i) histogram->Observe(3);  // bucket < 4
  const std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  EXPECT_EQ(obs::HistogramQuantile(snapshot[0], 0.5), 4);
  EXPECT_EQ(obs::HistogramQuantile(snapshot[0], 1.0), 4);
}

TEST(FlightRecorderTest, RingIsBoundedAndDumpsParseableJsonLines) {
  obs::FlightRecorderConfig config;
  config.capacity = 4;
  obs::FlightRecorder recorder(config);
  for (int i = 0; i < 10; ++i) {
    obs::RecordedRequest record;
    record.trace_id = "t" + std::to_string(i);
    record.tenant = "tenant";
    record.request_id = "r" + std::to_string(i);
    record.outcome = i % 2 == 0 ? "ok" : "timeout";
    record.queue_wait_ms = 1.5;
    record.service_ms = 2.5;
    recorder.Record(std::move(record));
  }
  EXPECT_EQ(recorder.total_recorded(), 10);
  EXPECT_EQ(recorder.non_ok_recorded(), 5);
  const std::vector<obs::RecordedRequest> snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.size(), 4u);  // ring evicted the oldest six
  EXPECT_EQ(snapshot.front().request_id, "r6");
  EXPECT_EQ(snapshot.back().request_id, "r9");

  const std::string dump = recorder.DumpJsonLines();
  size_t lines = 0;
  size_t start = 0;
  while (start < dump.size()) {
    size_t end = dump.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    Result<JsonValue> parsed = JsonValue::Parse(dump.substr(start, end - start));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(parsed->Has("request_id"));
    EXPECT_TRUE(parsed->Has("outcome"));
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 4u);
}

TEST(FlightRecorderTest, AutoDumpFiresOnceThenStaysQuiet) {
  obs::FlightRecorderConfig config;
  config.capacity = 8;
  config.quiet_seconds = 3600.0;  // nothing in-test ever re-arms it
  obs::FlightRecorder recorder(config);
  std::vector<std::string> dumps;
  recorder.SetAutoDumpSink(
      [&dumps](const std::string& dump) { dumps.push_back(dump); });

  obs::RecordedRequest ok;
  ok.request_id = "fine";
  ok.outcome = "ok";
  recorder.Record(std::move(ok));
  EXPECT_TRUE(dumps.empty());  // healthy traffic never dumps

  obs::RecordedRequest bad;
  bad.request_id = "first-bad";
  bad.outcome = "overloaded";
  recorder.Record(std::move(bad));
  ASSERT_EQ(dumps.size(), 1u);  // first trouble after quiet fires
  EXPECT_NE(dumps[0].find("first-bad"), std::string::npos);

  obs::RecordedRequest more;
  more.request_id = "second-bad";
  more.outcome = "timeout";
  recorder.Record(std::move(more));
  EXPECT_EQ(dumps.size(), 1u);  // within the quiet window: suppressed
  EXPECT_EQ(recorder.auto_dumps(), 1);
  EXPECT_EQ(recorder.non_ok_recorded(), 2);
}

TEST(FlightRecorderTest, ZeroQuietWindowDumpsEveryFailure) {
  obs::FlightRecorderConfig config;
  config.quiet_seconds = 0.0;
  obs::FlightRecorder recorder(config);
  int dumps = 0;
  recorder.SetAutoDumpSink([&dumps](const std::string&) { ++dumps; });
  for (int i = 0; i < 3; ++i) {
    obs::RecordedRequest bad;
    bad.request_id = "b" + std::to_string(i);
    bad.outcome = "failed";
    recorder.Record(std::move(bad));
  }
  EXPECT_EQ(dumps, 3);
}

TEST(GlobalMetricsTest, FinishedRunsFoldIntoGlobalRegistry) {
  int64_t nodes_before =
      obs::GlobalMetrics().GetCounter(obs::kMetricNodesCreated)->Value();
  int64_t runs_before =
      obs::GlobalMetrics().GetCounter(obs::kMetricRuns)->Value();

  Figure3Fixture fix;
  Term fall12(Season::kFall, 2012);
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  auto result = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                        fix.FreshStudent(), fall12, **goal,
                                        options);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->stats.nodes_created, 0);

  // The engine's destructor published the run into the global registry.
  EXPECT_GE(obs::GlobalMetrics().GetCounter(obs::kMetricNodesCreated)->Value(),
            nodes_before + result->stats.nodes_created);
  EXPECT_GE(obs::GlobalMetrics().GetCounter(obs::kMetricRuns)->Value(),
            runs_before + 1);
}

}  // namespace
}  // namespace coursenav

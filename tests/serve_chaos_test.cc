// Serving chaos sweep: 200 deterministic fault-injection seeds drive a
// small, easily-overloaded server with concurrent retrying clients while
// the serve/overload seam randomly forces queue-full sheds, deadline
// expiries, and slow-client drops. The contract under test: every request
// ends in exactly one structured outcome, the terminal buckets account for
// every submission, and the server always drains clean — no crashes, no
// hangs, no lost tickets, regardless of seed.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "data/brandeis_cs.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/fault_injection.h"
#include "util/json.h"

namespace coursenav::serve {
namespace {

const data::BrandeisDataset& Dataset() {
  static const data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  return dataset;
}

FaultConfig ChaosConfig(uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.site_probability[std::string(kFaultSiteServeOverload)] = 0.3;
  return config;
}

/// A deliberately tiny request so 200 seeds stay fast: 2-semester horizon
/// with a small node cap.
std::string TinyPayload(int session, int sequence) {
  JsonValue::Object start;
  start["term"] = JsonValue("Spring 2015");
  JsonValue::Object limits;
  limits["max_nodes"] = JsonValue(static_cast<int64_t>(2000));
  JsonValue::Object options;
  options["limits"] = JsonValue(std::move(limits));
  JsonValue::Object request;
  request["start"] = JsonValue(std::move(start));
  request["end_term"] = JsonValue("Fall 2015");
  request["type"] = JsonValue("deadline");
  request["options"] = JsonValue(std::move(options));
  return MakeRequestEnvelope("tenant-" + std::to_string(session % 2),
                             "chaos-" + std::to_string(sequence), 500.0,
                             JsonValue(std::move(request)))
      .Dump();
}

/// One chaos round under one seed. Returns the number of requests whose
/// outcome was structurally invalid (always expected to be 0).
int RunSeed(uint64_t seed) {
  ScopedFaultInjection chaos(ChaosConfig(seed));

  ServerConfig config;
  config.num_workers = 2;
  config.admission.max_queue_depth = 4;
  config.admission.max_queued_per_tenant = 2;
  config.admission.max_inflight_per_tenant = 2;
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule, config);
  server.Start();

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 5;
  std::atomic<int> invalid{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int session = 0; session < kClients; ++session) {
    clients.emplace_back([&, session] {
      TransportFn transport = [&server](std::string_view payload) {
        return Result<ResponseEnvelope>(server.HandleRequest(payload));
      };
      RetryPolicy policy;
      policy.max_attempts = 2;
      policy.jitter_seed = seed * 101 + static_cast<uint64_t>(session);
      SleepFn no_sleep = [](double) {};
      for (int sequence = 0; sequence < kRequestsPerClient; ++sequence) {
        Result<RetryResult> reply = CallWithRetry(
            transport, TinyPayload(session, sequence), policy, no_sleep);
        if (!reply.ok()) {
          ++invalid;  // The in-process transport never fails.
          continue;
        }
        const ResponseEnvelope& response = reply->response;
        switch (response.outcome) {
          case ResponseOutcome::kOk:
          case ResponseOutcome::kDegraded:
            if (!response.status.ok()) ++invalid;
            break;
          case ResponseOutcome::kOverloaded:
            // Sheds must carry a positive back-off hint.
            if (response.retry_after_ms <= 0.0 || response.status.ok()) {
              ++invalid;
            }
            break;
          case ResponseOutcome::kTimeout:
          case ResponseOutcome::kCancelled:
          case ResponseOutcome::kSlowClient:
            if (response.status.ok()) ++invalid;
            break;
          case ResponseOutcome::kRejected:
          case ResponseOutcome::kFailed:
            // Chaos never produces malformed requests or internal errors.
            ++invalid;
            break;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_TRUE(server.Drain(10.0).ok()) << "seed " << seed;

  // Conservation: once quiescent, every submission sits in exactly one
  // terminal bucket.
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, stats.shed + stats.rejected + stats.ok +
                                 stats.degraded + stats.timeout +
                                 stats.cancelled + stats.slow_client +
                                 stats.failed)
      << "seed " << seed;
  EXPECT_EQ(stats.failed, 0) << "seed " << seed;
  EXPECT_EQ(stats.queue_depth, 0) << "seed " << seed;
  EXPECT_EQ(stats.inflight, 0) << "seed " << seed;
  // Retries mean more submissions than the 20 logical requests, never
  // fewer.
  EXPECT_GE(stats.submitted, int64_t{kClients * kRequestsPerClient})
      << "seed " << seed;
  return invalid.load();
}

TEST(ServeChaosTest, TwoHundredSeedSweepStaysStructured) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    EXPECT_EQ(RunSeed(seed), 0) << "seed " << seed;
    if (HasFatalFailure()) break;
  }
}

TEST(ServeChaosTest, RecorderCapturesEveryNonOkOutcome) {
  // Chaos-seeded overload, one serial client, no retries: every non-ok
  // outcome the client saw must appear in the flight recorder with the
  // same request_id and outcome — the black box misses nothing.
  ScopedFaultInjection chaos(ChaosConfig(42));
  ServerConfig config;
  config.num_workers = 2;
  config.admission.max_queue_depth = 4;
  ExplorationServer server(&Dataset().catalog, &Dataset().schedule, config);
  server.Start();

  std::map<std::string, std::string> expected;  // request_id -> outcome
  for (int i = 0; i < 40; ++i) {
    ResponseEnvelope response = server.HandleRequest(TinyPayload(i % 4, i));
    if (response.outcome != ResponseOutcome::kOk) {
      expected[response.request_id] =
          std::string(ResponseOutcomeName(response.outcome));
    }
  }
  EXPECT_TRUE(server.Drain(10.0).ok());
  ASSERT_FALSE(expected.empty()) << "seed 42 injected no faults";

  std::map<std::string, std::string> recorded;
  for (const obs::RecordedRequest& record : server.recorder().Snapshot()) {
    if (record.is_ok()) continue;
    recorded[record.request_id] = record.outcome;
#if COURSENAV_TRACING
    // Executed non-ok requests keep their span tree in the sink; sheds
    // never reached a worker, so they legitimately have none.
    if (record.outcome != "overloaded") {
      EXPECT_FALSE(record.trace.empty()) << record.request_id;
    }
#endif
  }
  EXPECT_EQ(recorded, expected);
  EXPECT_EQ(server.recorder().non_ok_recorded(),
            static_cast<int64_t>(expected.size()));
}

TEST(ServeChaosTest, ForcedOverloadIsDeterministicInTheSeed) {
  // The same seed must produce the same shed/fault pattern: run one seed
  // twice with a single serial client and compare the outcome sequences.
  std::vector<std::string> first_outcomes;
  for (int run = 0; run < 2; ++run) {
    SCOPED_TRACE(run);
    ScopedFaultInjection chaos(ChaosConfig(7));
    ServerConfig config;
    config.num_workers = 1;
    ExplorationServer server(&Dataset().catalog, &Dataset().schedule,
                             config);
    server.Start();
    std::vector<std::string> outcomes;
    for (int i = 0; i < 20; ++i) {
      ResponseEnvelope response = server.HandleRequest(TinyPayload(0, i));
      outcomes.emplace_back(ResponseOutcomeName(response.outcome));
    }
    EXPECT_TRUE(server.Drain(10.0).ok());
    if (run == 0) {
      first_outcomes = outcomes;
    } else {
      EXPECT_EQ(outcomes, first_outcomes);
    }
  }
}

}  // namespace
}  // namespace coursenav::serve

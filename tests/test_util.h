#ifndef COURSENAV_TESTS_TEST_UTIL_H_
#define COURSENAV_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "core/enrollment.h"
#include "core/stats.h"
#include "expr/parser.h"
#include "graph/learning_graph.h"
#include "graph/path.h"
#include "tools/lint/lint.h"

namespace coursenav::testing_util {

/// Lints `content` as if it lived at `path`, with `rule` alone, and
/// renders each finding to its stable `file:line: [rule-id] message` form
/// — the fixture workhorse of tests/lint_test.cc.
inline std::vector<std::string> LintRuleHits(std::string_view path,
                                             std::string_view content,
                                             std::string_view rule) {
  std::vector<std::string> rendered;
  for (const lint::Finding& finding : lint::LintContent(path, content, rule)) {
    rendered.push_back(finding.ToString());
  }
  return rendered;
}

/// The paper's Figure 3 scenario: C = {11A, 29A, 21A}; 11A and 29A have no
/// prerequisites, 21A requires 11A; 11A and 29A are offered Fall'11 and
/// Fall'12, 21A only Spring'12.
struct Figure3Fixture {
  Catalog catalog;
  OfferingSchedule schedule;
  CourseId c11a, c29a, c21a;
  Term fall11{Season::kFall, 2011};
  Term spring13{Season::kSpring, 2013};

  Figure3Fixture() : schedule(0) {
    Course c;
    c.code = "11A";
    c11a = *catalog.AddCourse(std::move(c));
    c = Course();
    c.code = "29A";
    c29a = *catalog.AddCourse(std::move(c));
    c = Course();
    c.code = "21A";
    c.prerequisites = *expr::ParseBoolExpr("11A");
    c21a = *catalog.AddCourse(std::move(c));
    Status finalize = catalog.Finalize();
    if (!finalize.ok()) std::abort();

    schedule = OfferingSchedule(catalog.size());
    Term fall12(Season::kFall, 2012), spring12(Season::kSpring, 2012);
    (void)schedule.AddOffering(c11a, fall11);
    (void)schedule.AddOffering(c11a, fall12);
    (void)schedule.AddOffering(c29a, fall11);
    (void)schedule.AddOffering(c29a, fall12);
    (void)schedule.AddOffering(c21a, spring12);
  }

  EnrollmentStatus FreshStudent() const {
    return {fall11, catalog.NewCourseSet()};
  }
};

/// Checks the structural invariants every generated graph — complete or
/// budget-truncated — must satisfy, and returns a description of the first
/// violation (empty string = structurally valid):
///   - a rooted tree: `num_edges == num_nodes - 1`, only the root has no
///     parent edge, parents are created before their children;
///   - every edge agrees with its endpoints (`edge.to`'s parent_edge is the
///     edge, `edge.from` lists it among out_edges);
///   - child state is derived from the parent: `term == parent.term.Next()`,
///     `completed == parent.completed | selection`, and the selection was
///     actually available (`selection ⊆ parent.options`).
inline std::string StructureErrors(const LearningGraph& graph) {
  if (graph.num_nodes() == 0) {
    return graph.num_edges() == 0 ? "" : "edges without nodes";
  }
  if (graph.num_edges() != graph.num_nodes() - 1) {
    return "not a tree: " + std::to_string(graph.num_edges()) + " edges for " +
           std::to_string(graph.num_nodes()) + " nodes";
  }
  for (NodeId id = 0; id < graph.num_nodes(); ++id) {
    const LearningNode& node = graph.node(id);
    if (id == graph.root()) {
      if (node.parent_edge != kInvalidEdgeId) return "root has a parent edge";
      continue;
    }
    const std::string where = "node " + std::to_string(id) + ": ";
    if (node.parent_edge < 0 || node.parent_edge >= graph.num_edges()) {
      return where + "parent edge out of range";
    }
    const LearningEdge& in = graph.edge(node.parent_edge);
    if (in.to != id) return where + "parent edge does not point back";
    if (in.from < 0 || in.from >= id) {
      return where + "parent not created before child";
    }
    const LearningNode& parent = graph.node(in.from);
    bool listed = false;
    for (EdgeId out : parent.out_edges) listed |= (out == node.parent_edge);
    if (!listed) return where + "parent does not list the inbound edge";
    if (node.term != parent.term.Next()) {
      return where + "term is not the semester after its parent's";
    }
    if (!in.selection.IsSubsetOf(parent.options)) {
      return where + "selection not available in the parent's semester";
    }
    DynamicBitset expected = parent.completed;
    expected |= in.selection;
    if (node.completed != expected) {
      return where + "completed set != parent.completed | selection";
    }
  }
  for (EdgeId id = 0; id < graph.num_edges(); ++id) {
    const LearningEdge& edge = graph.edge(id);
    if (edge.from < 0 || edge.from >= graph.num_nodes() || edge.to < 0 ||
        edge.to >= graph.num_nodes()) {
      return "edge " + std::to_string(id) + ": endpoint out of range";
    }
  }
  return "";
}

/// Checks that a generator's stats agree with the graph it produced (for
/// both complete and partial runs); returns the first inconsistency, or "".
inline std::string StatsErrors(const LearningGraph& graph,
                               const ExplorationStats& stats) {
  if (stats.nodes_created != graph.num_nodes()) {
    return "nodes_created disagrees with the graph";
  }
  if (stats.edges_created != graph.num_edges()) {
    return "edges_created disagrees with the graph";
  }
  if (stats.goal_paths + stats.dead_end_paths != stats.terminal_paths) {
    return "goal + dead-end paths != terminal paths";
  }
  // Unexpanded worklist nodes of a truncated run are leaves that were never
  // classified, so classified terminals can only undercount leaves.
  if (stats.terminal_paths >
      static_cast<int64_t>(graph.LeafNodes().size())) {
    return "more terminal paths than leaves";
  }
  if (static_cast<int64_t>(graph.GoalNodes().size()) != stats.goal_paths) {
    return "goal-marked nodes disagree with goal_paths";
  }
  return "";
}

/// Field-by-field graph comparison; returns a description of the first
/// difference, or "" when the graphs are identical (ids, bitsets, costs —
/// everything a serializer would write). This is the workhorse of the
/// byte-identity contracts: serial vs parallel (tests/parallel_test.cc)
/// and legacy facade vs planner pipeline (tests/plan_test.cc).
inline std::string GraphDifference(const LearningGraph& a,
                                   const LearningGraph& b) {
  if (a.num_nodes() != b.num_nodes()) {
    return "node counts differ: " + std::to_string(a.num_nodes()) + " vs " +
           std::to_string(b.num_nodes());
  }
  if (a.num_edges() != b.num_edges()) {
    return "edge counts differ: " + std::to_string(a.num_edges()) + " vs " +
           std::to_string(b.num_edges());
  }
  if (a.root() != b.root()) return "roots differ";
  for (NodeId id = 0; id < a.num_nodes(); ++id) {
    const LearningNode& na = a.node(id);
    const LearningNode& nb = b.node(id);
    const std::string where = "node " + std::to_string(id) + ": ";
    if (na.term != nb.term) return where + "terms differ";
    if (na.completed != nb.completed) return where + "completed sets differ";
    if (na.options != nb.options) return where + "option sets differ";
    if (na.parent_edge != nb.parent_edge) return where + "parent edges differ";
    if (na.out_edges != nb.out_edges) return where + "out edges differ";
    if (na.is_goal != nb.is_goal) return where + "goal flags differ";
    if (na.path_cost != nb.path_cost) return where + "path costs differ";
  }
  for (EdgeId id = 0; id < a.num_edges(); ++id) {
    const LearningEdge& ea = a.edge(id);
    const LearningEdge& eb = b.edge(id);
    const std::string where = "edge " + std::to_string(id) + ": ";
    if (ea.from != eb.from || ea.to != eb.to) {
      return where + "endpoints differ";
    }
    if (ea.selection != eb.selection) return where + "selections differ";
    if (ea.cost != eb.cost) return where + "costs differ";
  }
  return "";
}

/// Stats equality modulo runtime (wall time legitimately varies).
inline std::string StatsDifference(const ExplorationStats& a,
                                   const ExplorationStats& b) {
  if (a.nodes_created != b.nodes_created) return "nodes_created differ";
  if (a.edges_created != b.edges_created) return "edges_created differ";
  if (a.nodes_expanded != b.nodes_expanded) return "nodes_expanded differ";
  if (a.terminal_paths != b.terminal_paths) return "terminal_paths differ";
  if (a.goal_paths != b.goal_paths) return "goal_paths differ";
  if (a.dead_end_paths != b.dead_end_paths) return "dead_end_paths differ";
  if (a.pruned_time != b.pruned_time) return "pruned_time differ";
  if (a.pruned_availability != b.pruned_availability) {
    return "pruned_availability differ";
  }
  return "";
}

/// Extracts the root-to-leaf path of every leaf (all learning paths of a
/// generated graph).
inline std::vector<LearningPath> AllLeafPaths(const LearningGraph& graph) {
  std::vector<LearningPath> out;
  for (NodeId leaf : graph.LeafNodes()) {
    out.push_back(LearningPath::FromGraph(graph, leaf));
  }
  return out;
}

/// Extracts the paths of goal-marked leaves only.
inline std::vector<LearningPath> GoalPaths(const LearningGraph& graph) {
  std::vector<LearningPath> out;
  for (NodeId leaf : graph.GoalNodes()) {
    out.push_back(LearningPath::FromGraph(graph, leaf));
  }
  return out;
}

/// True if `needle` equals some element of `haystack`.
inline bool ContainsPath(const std::vector<LearningPath>& haystack,
                         const LearningPath& needle) {
  for (const LearningPath& path : haystack) {
    if (path == needle) return true;
  }
  return false;
}

}  // namespace coursenav::testing_util

#endif  // COURSENAV_TESTS_TEST_UTIL_H_

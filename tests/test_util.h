#ifndef COURSENAV_TESTS_TEST_UTIL_H_
#define COURSENAV_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schedule.h"
#include "catalog/term.h"
#include "core/enrollment.h"
#include "expr/parser.h"
#include "graph/learning_graph.h"
#include "graph/path.h"

namespace coursenav::testing_util {

/// The paper's Figure 3 scenario: C = {11A, 29A, 21A}; 11A and 29A have no
/// prerequisites, 21A requires 11A; 11A and 29A are offered Fall'11 and
/// Fall'12, 21A only Spring'12.
struct Figure3Fixture {
  Catalog catalog;
  OfferingSchedule schedule;
  CourseId c11a, c29a, c21a;
  Term fall11{Season::kFall, 2011};
  Term spring13{Season::kSpring, 2013};

  Figure3Fixture() : schedule(0) {
    Course c;
    c.code = "11A";
    c11a = *catalog.AddCourse(std::move(c));
    c = Course();
    c.code = "29A";
    c29a = *catalog.AddCourse(std::move(c));
    c = Course();
    c.code = "21A";
    c.prerequisites = *expr::ParseBoolExpr("11A");
    c21a = *catalog.AddCourse(std::move(c));
    Status finalize = catalog.Finalize();
    if (!finalize.ok()) std::abort();

    schedule = OfferingSchedule(catalog.size());
    Term fall12(Season::kFall, 2012), spring12(Season::kSpring, 2012);
    (void)schedule.AddOffering(c11a, fall11);
    (void)schedule.AddOffering(c11a, fall12);
    (void)schedule.AddOffering(c29a, fall11);
    (void)schedule.AddOffering(c29a, fall12);
    (void)schedule.AddOffering(c21a, spring12);
  }

  EnrollmentStatus FreshStudent() const {
    return {fall11, catalog.NewCourseSet()};
  }
};

/// Extracts the root-to-leaf path of every leaf (all learning paths of a
/// generated graph).
inline std::vector<LearningPath> AllLeafPaths(const LearningGraph& graph) {
  std::vector<LearningPath> out;
  for (NodeId leaf : graph.LeafNodes()) {
    out.push_back(LearningPath::FromGraph(graph, leaf));
  }
  return out;
}

/// Extracts the paths of goal-marked leaves only.
inline std::vector<LearningPath> GoalPaths(const LearningGraph& graph) {
  std::vector<LearningPath> out;
  for (NodeId leaf : graph.GoalNodes()) {
    out.push_back(LearningPath::FromGraph(graph, leaf));
  }
  return out;
}

/// True if `needle` equals some element of `haystack`.
inline bool ContainsPath(const std::vector<LearningPath>& haystack,
                         const LearningPath& needle) {
  for (const LearningPath& path : haystack) {
    if (path == needle) return true;
  }
  return false;
}

}  // namespace coursenav::testing_util

#endif  // COURSENAV_TESTS_TEST_UTIL_H_

#include "expr/expr.h"

#include <gtest/gtest.h>

#include <set>

#include "expr/parser.h"

namespace coursenav::expr {
namespace {

bool EvalWith(const Expr& e, const std::set<std::string>& truths) {
  return e.Eval([&](std::string_view name) {
    return truths.count(std::string(name)) > 0;
  });
}

TEST(ExprTest, DefaultIsTrue) {
  Expr e;
  EXPECT_TRUE(EvalWith(e, {}));
  EXPECT_EQ(e.kind(), Expr::Kind::kConst);
}

TEST(ExprTest, Constants) {
  EXPECT_TRUE(EvalWith(Expr::True(), {}));
  EXPECT_FALSE(EvalWith(Expr::False(), {}));
}

TEST(ExprTest, VarEvaluation) {
  Expr e = Expr::Var("A");
  EXPECT_FALSE(EvalWith(e, {}));
  EXPECT_TRUE(EvalWith(e, {"A"}));
}

TEST(ExprTest, AndOrNotSemantics) {
  Expr e = Expr::And({Expr::Var("A"),
                      Expr::Or({Expr::Var("B"), Expr::Not(Expr::Var("C"))})});
  EXPECT_TRUE(EvalWith(e, {"A", "B"}));
  EXPECT_TRUE(EvalWith(e, {"A"}));          // not C holds
  EXPECT_FALSE(EvalWith(e, {"A", "C"}));    // B false, not C false
  EXPECT_FALSE(EvalWith(e, {"B"}));         // A false
}

TEST(ExprTest, EmptyAndIsTrueEmptyOrIsFalse) {
  EXPECT_TRUE(EvalWith(Expr::And({}), {}));
  EXPECT_FALSE(EvalWith(Expr::Or({}), {}));
}

TEST(ExprTest, SingleOperandCollapses) {
  Expr e = Expr::And({Expr::Var("A")});
  EXPECT_EQ(e.kind(), Expr::Kind::kVar);
}

TEST(ExprTest, CollectVarsDeduplicates) {
  Expr e = Expr::And({Expr::Var("A"), Expr::Or({Expr::Var("A"),
                                                Expr::Var("B")})});
  std::set<std::string> vars;
  e.CollectVars(&vars);
  EXPECT_EQ(vars, (std::set<std::string>{"A", "B"}));
}

TEST(ExprTest, NodeCount) {
  Expr e = Expr::And({Expr::Var("A"), Expr::Not(Expr::Var("B"))});
  EXPECT_EQ(e.NodeCount(), 4);  // and, A, not, B
}

TEST(ExprTest, ToStringMinimalParens) {
  Expr e = Expr::Or({Expr::Var("A"),
                     Expr::And({Expr::Var("B"), Expr::Var("C")})});
  EXPECT_EQ(e.ToString(), "A or B and C");
  Expr f = Expr::And({Expr::Or({Expr::Var("A"), Expr::Var("B")}),
                      Expr::Var("C")});
  EXPECT_EQ(f.ToString(), "(A or B) and C");
  Expr g = Expr::Not(Expr::Or({Expr::Var("A"), Expr::Var("B")}));
  EXPECT_EQ(g.ToString(), "not (A or B)");
}

TEST(ExprTest, StructuralEquality) {
  Expr a = Expr::And({Expr::Var("X"), Expr::Var("Y")});
  Expr b = Expr::And({Expr::Var("X"), Expr::Var("Y")});
  Expr c = Expr::And({Expr::Var("Y"), Expr::Var("X")});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);  // order matters structurally
}

// ---------------------------------------------------------------- parser

TEST(ParseBoolExprTest, SingleVariable) {
  auto e = ParseBoolExpr("COSI11A");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->ToString(), "COSI11A");
}

TEST(ParseBoolExprTest, PrecedenceAndBindsTighter) {
  auto e = ParseBoolExpr("A or B and C");
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(EvalWith(*e, {"B"}));
  EXPECT_TRUE(EvalWith(*e, {"A"}));
  EXPECT_TRUE(EvalWith(*e, {"B", "C"}));
}

TEST(ParseBoolExprTest, ParenthesesOverridePrecedence) {
  auto e = ParseBoolExpr("(A or B) and C");
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(EvalWith(*e, {"A"}));
  EXPECT_TRUE(EvalWith(*e, {"A", "C"}));
}

TEST(ParseBoolExprTest, SymbolOperators) {
  auto e = ParseBoolExpr("A && (B || !C)");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(EvalWith(*e, {"A"}));
  EXPECT_FALSE(EvalWith(*e, {"A", "C"}));
  auto f = ParseBoolExpr("A & B | C");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(EvalWith(*f, {"C"}));
}

TEST(ParseBoolExprTest, KeywordsCaseInsensitive) {
  auto e = ParseBoolExpr("A AND NOT b OR TRUE");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(EvalWith(*e, {}));
}

TEST(ParseBoolExprTest, ConstantsParse) {
  EXPECT_TRUE(EvalWith(*ParseBoolExpr("true"), {}));
  EXPECT_FALSE(EvalWith(*ParseBoolExpr("false"), {}));
}

TEST(ParseBoolExprTest, IdentifiersWithDigitsAndDashes) {
  auto e = ParseBoolExpr("CS-101a and MATH10b");
  ASSERT_TRUE(e.ok());
  std::set<std::string> vars;
  e->CollectVars(&vars);
  EXPECT_EQ(vars, (std::set<std::string>{"CS-101a", "MATH10b"}));
}

TEST(ParseBoolExprTest, ErrorsCarryParseErrorCode) {
  for (const char* bad :
       {"", "  ", "A and", "and A", "(A", "A)", "A B", "A ∧ B", "()",
        "not", "A or or B"}) {
    Result<Expr> e = ParseBoolExpr(bad);
    EXPECT_FALSE(e.ok()) << "input: " << bad;
    EXPECT_TRUE(e.status().IsParseError()) << "input: " << bad;
  }
}

TEST(ParseBoolExprTest, RoundTripThroughToString) {
  for (const char* text :
       {"A and B", "A or B and C", "(A or B) and C", "not A and B",
        "A and (B or C) and D"}) {
    auto first = ParseBoolExpr(text);
    ASSERT_TRUE(first.ok()) << text;
    auto second = ParseBoolExpr(first->ToString());
    ASSERT_TRUE(second.ok()) << first->ToString();
    // Structural equality after one round trip.
    EXPECT_TRUE(*first == *second) << text;
  }
}

}  // namespace
}  // namespace coursenav::expr

#include "tools/lint/lint.h"

#include <gtest/gtest.h>

#include <initializer_list>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/term.h"
#include "graph/learning_graph.h"
#include "tests/test_util.h"
#include "util/bitset.h"
#include "util/check.h"

namespace coursenav {

/// Test-only backdoor (friend of LearningGraph): hands out mutable views of
/// the private arenas so tests can hand-corrupt a graph and prove
/// CheckInvariants rejects it.
class LearningGraphTestPeer {
 public:
  static LearningNode& MutableNode(LearningGraph& graph, NodeId id) {
    return graph.node_mut(id);
  }
  static LearningEdge& MutableEdge(LearningGraph& graph, EdgeId id) {
    return graph.edge_mut(id);
  }
};

namespace {

using lint::Finding;
using lint::LintContent;

// ---------------------------------------------------------------------------
// Lint-rule fixtures. Each rule gets a firing fixture, a NOLINT-suppressed
// fixture, and a clean fixture. The fixture runner lives in
// tests/test_util.h so other suites can lint generated sources too.
// ---------------------------------------------------------------------------

using testing_util::LintRuleHits;

TEST(LayeringRuleTest, FlagsUpwardInclude) {
  std::vector<std::string> hits =
      LintRuleHits("src/core/engine.cc", "#include \"service/navigator.h\"\n",
           "coursenav-layering");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].find("src/core/engine.cc:1:"), std::string::npos);
  EXPECT_NE(hits[0].find("[coursenav-layering]"), std::string::npos);
  EXPECT_NE(hits[0].find("'service'"), std::string::npos);
}

TEST(LayeringRuleTest, FlagsUtilIncludingAnything) {
  EXPECT_EQ(LintRuleHits("src/util/result.h", "#include \"expr/expr.h\"\n",
                 "coursenav-layering")
                .size(),
            1u);
}

TEST(LayeringRuleTest, SuppressedByNolint) {
  EXPECT_TRUE(LintRuleHits("src/core/engine.cc",
                   "#include \"service/navigator.h\"  "
                   "// NOLINT(coursenav-layering)\n",
                   "coursenav-layering")
                  .empty());
}

TEST(LayeringRuleTest, AllowsDeclaredDeps) {
  EXPECT_TRUE(LintRuleHits("src/core/engine.cc",
                   "#include \"graph/learning_graph.h\"\n"
                   "#include \"requirements/goal.h\"\n"
                   "#include \"util/bitset.h\"\n",
                   "coursenav-layering")
                  .empty());
}

TEST(LayeringRuleTest, CoreMustNotIncludePlan) {
  std::vector<std::string> hits =
      LintRuleHits("src/core/engine.cc", "#include \"plan/request.h\"\n",
           "coursenav-layering");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].find("'plan'"), std::string::npos);
}

TEST(LayeringRuleTest, PlanMayUseCoreAndExecButNotService) {
  EXPECT_TRUE(LintRuleHits("src/plan/executor.cc",
                   "#include \"core/engine.h\"\n"
                   "#include \"exec/parallel_expander.h\"\n"
                   "#include \"graph/learning_graph.h\"\n",
                   "coursenav-layering")
                  .empty());
  EXPECT_EQ(LintRuleHits("src/plan/planner.cc",
                 "#include \"service/navigator.h\"\n",
                 "coursenav-layering")
                .size(),
            1u);
}

TEST(LayeringRuleTest, ServiceMayIncludePlan) {
  EXPECT_TRUE(LintRuleHits("src/service/navigator.h",
                   "#include \"plan/request.h\"\n",
                   "coursenav-layering")
                  .empty());
}

TEST(LayeringRuleTest, IgnoresFilesOutsideSrc) {
  EXPECT_TRUE(LintRuleHits("tests/some_test.cc", "#include \"service/navigator.h\"\n",
                   "coursenav-layering")
                  .empty());
}

TEST(LayeringRuleTest, IgnoresSystemAndUnknownIncludes) {
  EXPECT_TRUE(LintRuleHits("src/util/result.h",
                   "#include <vector>\n#include \"gtest/gtest.h\"\n",
                   "coursenav-layering")
                  .empty());
}

TEST(BannedSymbolRuleTest, FlagsRandCall) {
  std::vector<std::string> hits = LintRuleHits(
      "src/core/engine.cc", "int x = rand();\n", "coursenav-banned-symbol");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].find("'rand'"), std::string::npos);
}

TEST(BannedSymbolRuleTest, FlagsSystemClockEverywhere) {
  EXPECT_EQ(LintRuleHits("tests/some_test.cc",
                 "auto t = std::chrono::system_clock::now();\n",
                 "coursenav-banned-symbol")
                .size(),
            1u);
}

TEST(BannedSymbolRuleTest, SteadyClockScopedByModule) {
  const char* use = "auto t = std::chrono::steady_clock::now();\n";
  // Banned in the pure algorithmic layers...
  EXPECT_EQ(LintRuleHits("src/core/engine.cc", use, "coursenav-banned-symbol").size(),
            1u);
  // ...allowed in the timing substrate and outside src/.
  EXPECT_TRUE(
      LintRuleHits("src/util/stopwatch.cc", use, "coursenav-banned-symbol").empty());
  EXPECT_TRUE(
      LintRuleHits("bench/bench_util.h", use, "coursenav-banned-symbol").empty());
}

TEST(BannedSymbolRuleTest, SuppressedByNolint) {
  EXPECT_TRUE(LintRuleHits("src/core/engine.cc",
                   "int x = rand();  // NOLINT(coursenav-banned-symbol)\n",
                   "coursenav-banned-symbol")
                  .empty());
}

TEST(BannedSymbolRuleTest, CleanOnQualifiedUsesAndWords) {
  EXPECT_TRUE(LintRuleHits("src/core/engine.cc",
                   "double time = 0;\n"            // plain word, not a call
                   "budget.time();\n"              // member call
                   "clock->time();\n"              // member call
                   "Stopwatch::time();\n"          // qualified call
                   "// calling time() is bad\n"    // comment
                   "Log(\"rand() and time()\");\n",  // string literal
                   "coursenav-banned-symbol")
                  .empty());
}

TEST(RawNewRuleTest, FlagsNewAndDelete) {
  EXPECT_EQ(
      LintRuleHits("src/core/engine.cc", "int* p = new int;\n", "coursenav-raw-new")
          .size(),
      1u);
  EXPECT_EQ(LintRuleHits("src/core/engine.cc", "delete ptr;\n", "coursenav-raw-new")
                .size(),
            1u);
}

TEST(RawNewRuleTest, SuppressedByNolint) {
  EXPECT_TRUE(LintRuleHits("src/core/engine.cc",
                   "static Foo* f = new Foo;  // NOLINT(coursenav-raw-new)\n",
                   "coursenav-raw-new")
                  .empty());
}

TEST(RawNewRuleTest, CleanOnDeletedMembersAndMakeUnique) {
  EXPECT_TRUE(LintRuleHits("src/core/engine.cc",
                   "Foo(const Foo&) = delete;\n"
                   "void* operator new(size_t size);\n"
                   "auto p = std::make_unique<int>(7);\n"
                   "// the old code used new/delete here\n",
                   "coursenav-raw-new")
                  .empty());
}

TEST(SimdEncapsulationRuleTest, FlagsBuiltinsAndIntrinsicsOutsideSimd) {
  EXPECT_EQ(LintRuleHits("src/util/bitset.cc",
                 "int n = __builtin_popcountll(word);\n",
                 "coursenav-simd-encapsulation")
                .size(),
            1u);
  EXPECT_EQ(LintRuleHits("src/core/pruning.cc", "int t = __builtin_ctzll(w);\n",
                 "coursenav-simd-encapsulation")
                .size(),
            1u);
  EXPECT_EQ(LintRuleHits("src/graph/learning_graph.cc",
                 "__m256i v = _mm256_loadu_si256(p);\n",
                 "coursenav-simd-encapsulation")
                .size(),
            1u);
  EXPECT_EQ(LintRuleHits("src/core/ranking.cc", "#include <immintrin.h>\n",
                 "coursenav-simd-encapsulation")
                .size(),
            1u);
}

TEST(SimdEncapsulationRuleTest, CleanInsideSimdLayerAndOnWrappers) {
  EXPECT_TRUE(LintRuleHits("src/util/simd/simd_avx2.cc",
                   "__m256i v = _mm256_loadu_si256(p);\n"
                   "int n = __builtin_popcountll(w);\n",
                   "coursenav-simd-encapsulation")
                  .empty());
  EXPECT_TRUE(LintRuleHits("src/core/pruning.cc",
                   "int n = simd::Popcount(words, stride);\n"
                   "int t = simd::CountTrailingZeros(w);\n",
                   "coursenav-simd-encapsulation")
                  .empty());
}

TEST(SimdEncapsulationRuleTest, SuppressedByNolint) {
  EXPECT_TRUE(
      LintRuleHits("src/core/engine.cc",
           "int n = __builtin_popcount(m);  "
           "// NOLINT(coursenav-simd-encapsulation)\n",
           "coursenav-simd-encapsulation")
          .empty());
}

TEST(UnorderedIterRuleTest, FlagsRangeForInTaggedFile) {
  std::vector<std::string> hits =
      LintRuleHits("src/core/engine.cc",
           "// coursenav:deterministic\n"
           "std::unordered_map<int, int> cache_;\n"
           "void Dump() { for (const auto& kv : cache_) Use(kv); }\n",
           "coursenav-unordered-iter");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].find(":3:"), std::string::npos);
  EXPECT_NE(hits[0].find("cache_"), std::string::npos);
}

TEST(UnorderedIterRuleTest, FlagsManualBeginIteration) {
  EXPECT_EQ(LintRuleHits("src/core/engine.cc",
                 "// coursenav:deterministic\n"
                 "std::unordered_set<int> seen_;\n"
                 "auto it = seen_.begin();\n",
                 "coursenav-unordered-iter")
                .size(),
            1u);
}

TEST(UnorderedIterRuleTest, UntaggedFileIsExempt) {
  EXPECT_TRUE(LintRuleHits("src/core/engine.cc",
                   "std::unordered_map<int, int> cache_;\n"
                   "void Dump() { for (const auto& kv : cache_) Use(kv); }\n",
                   "coursenav-unordered-iter")
                  .empty());
}

TEST(UnorderedIterRuleTest, SuppressedByNolint) {
  EXPECT_TRUE(
      LintRuleHits("src/core/engine.cc",
           "// coursenav:deterministic\n"
           "std::unordered_map<int, int> cache_;\n"
           "for (const auto& kv : cache_) {  // NOLINT(coursenav-unordered-iter)\n"
           "}\n",
           "coursenav-unordered-iter")
          .empty());
}

TEST(UnorderedIterRuleTest, CleanOnLookupsAndOrderedIteration) {
  EXPECT_TRUE(LintRuleHits("src/core/engine.cc",
                   "// coursenav:deterministic\n"
                   "std::unordered_map<int, int> cache_;\n"
                   "std::map<int, int> sorted_;\n"
                   "bool Has(int k) { return cache_.find(k) != cache_.end(); }\n"
                   "void Dump() { for (const auto& kv : sorted_) Use(kv); }\n",
                   "coursenav-unordered-iter")
                  .empty());
}

TEST(EndlRuleTest, FlagsEndl) {
  EXPECT_EQ(LintRuleHits("src/service/navigator.cc", "os << \"done\" << std::endl;\n",
                 "coursenav-endl")
                .size(),
            1u);
}

TEST(EndlRuleTest, SuppressedByNolint) {
  EXPECT_TRUE(
      LintRuleHits("src/service/navigator.cc",
           "os << \"done\" << std::endl;  // NOLINT(coursenav-endl)\n",
           "coursenav-endl")
          .empty());
}

TEST(EndlRuleTest, CleanOnNewlineAndMentionsInText) {
  EXPECT_TRUE(LintRuleHits("src/service/navigator.cc",
                   "os << \"done\\n\";\n"
                   "// std::endl is banned\n"
                   "Log(\"std::endl\");\n",
                   "coursenav-endl")
                  .empty());
}

TEST(HeaderGuardRuleTest, FlagsMissingGuard) {
  std::vector<std::string> hits =
      LintRuleHits("src/core/engine.h", "#include <vector>\nint x;\n",
           "coursenav-header-guard");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].find("does not start with"), std::string::npos);
}

TEST(HeaderGuardRuleTest, FlagsMismatchedDefine) {
  EXPECT_EQ(LintRuleHits("src/core/engine.h",
                 "#ifndef COURSENAV_CORE_ENGINE_H_\n#define WRONG_NAME\n",
                 "coursenav-header-guard")
                .size(),
            1u);
}

TEST(HeaderGuardRuleTest, FlagsNonConventionalGuardUnderSrc) {
  std::vector<std::string> hits =
      LintRuleHits("src/core/engine.h", "#ifndef ENGINE_H\n#define ENGINE_H\n",
           "coursenav-header-guard");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].find("COURSENAV_CORE_ENGINE_H_"), std::string::npos);
}

TEST(HeaderGuardRuleTest, SuppressedByNolint) {
  EXPECT_TRUE(LintRuleHits("src/core/engine.h",
                   "#include <vector>  // NOLINT(coursenav-header-guard)\n",
                   "coursenav-header-guard")
                  .empty());
}

TEST(HeaderGuardRuleTest, AcceptsPragmaOnceAndConventionalGuard) {
  EXPECT_TRUE(LintRuleHits("src/core/engine.h", "#pragma once\nint x;\n",
                   "coursenav-header-guard")
                  .empty());
  EXPECT_TRUE(
      LintRuleHits("src/core/engine.h",
           "// A leading comment is fine.\n"
           "#ifndef COURSENAV_CORE_ENGINE_H_\n"
           "#define COURSENAV_CORE_ENGINE_H_\n"
           "#endif  // COURSENAV_CORE_ENGINE_H_\n",
           "coursenav-header-guard")
          .empty());
  // No path convention outside src/; any matching guard passes.
  EXPECT_TRUE(LintRuleHits("tools/lint/lint.h",
                   "#ifndef MY_GUARD_H_\n#define MY_GUARD_H_\n",
                   "coursenav-header-guard")
                  .empty());
  // Source files need no guard at all.
  EXPECT_TRUE(LintRuleHits("src/core/engine.cc", "#include <vector>\n",
                   "coursenav-header-guard")
                  .empty());
}

TEST(DirectGenerateRuleTest, FlagsDirectCallInSrcModules) {
  std::vector<std::string> hits =
      LintRuleHits("src/service/session.cc",
           "auto r = GenerateRankedPaths(catalog, schedule, start, end,\n"
           "                             goal, ranking, k, options);\n",
           "coursenav-direct-generate");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].find("GenerateRankedPaths"), std::string::npos);
  EXPECT_NE(hits[0].find("ExplorationRequest"), std::string::npos);
  EXPECT_EQ(LintRuleHits("src/exec/parallel_expander.cc",
                 "GenerateDeadlineDrivenPaths(catalog, schedule, s, e, o);\n",
                 "coursenav-direct-generate")
                .size(),
            1u);
}

TEST(DirectGenerateRuleTest, PlanModuleAndFacadeHeadersExempt) {
  EXPECT_TRUE(LintRuleHits("src/plan/facades.cc",
                   "Result<RankedResult> GenerateRankedPaths(\n",
                   "coursenav-direct-generate")
                  .empty());
  EXPECT_TRUE(LintRuleHits("src/core/ranked_generator.h",
                   "Result<RankedResult> GenerateRankedPaths(\n",
                   "coursenav-direct-generate")
                  .empty());
}

TEST(DirectGenerateRuleTest, OutOfSrcCallersAndCommentsExempt) {
  // tools/tests/bench call the public facades legitimately.
  EXPECT_TRUE(LintRuleHits("tests/plan_test.cc",
                   "auto r = GenerateGoalDrivenPaths(c, s, st, e, g, o);\n",
                   "coursenav-direct-generate")
                  .empty());
  // Mentions in comments never fire (the scrubbed view is scanned).
  EXPECT_TRUE(LintRuleHits("src/core/counting.h",
                   "// same leaf set as GenerateDeadlineDrivenPaths\n",
                   "coursenav-direct-generate")
                  .empty());
}

TEST(DirectGenerateRuleTest, SuppressedByNolint) {
  EXPECT_TRUE(LintRuleHits("src/service/session.cc",
                   "auto r = GenerateRankedPaths(c, s, st, e, g, rk, k, o);"
                   "  // NOLINT(coursenav-direct-generate)\n",
                   "coursenav-direct-generate")
                  .empty());
}

TEST(LintDriverTest, AllRulesHaveUniqueIdsAndDescriptions) {
  std::set<std::string_view> ids;
  for (const lint::Rule* rule : lint::AllRules()) {
    EXPECT_FALSE(rule->id().empty());
    EXPECT_FALSE(rule->description().empty());
    EXPECT_TRUE(ids.insert(rule->id()).second)
        << "duplicate rule id " << rule->id();
  }
  EXPECT_EQ(ids.size(), 11u);
}

TEST(LintDriverTest, FullScanAggregatesAndSortsFindings) {
  std::vector<Finding> findings =
      LintContent("src/core/engine.h",
                  "#include \"service/navigator.h\"\n"
                  "int x = rand();\n");
  // Missing guard (line 1), bad include (line 1), rand() (line 2).
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 1);
  EXPECT_EQ(findings[2].line, 2);
  EXPECT_LE(findings[0].rule, findings[1].rule);
}

TEST(LintDriverTest, NolintListSuppressesOnlyNamedRules) {
  std::vector<Finding> findings = LintContent(
      "src/core/engine.cc",
      "int x = rand();  // NOLINT(coursenav-endl, coursenav-banned-symbol)\n"
      "int y = rand();  // NOLINT(coursenav-endl)\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[0].rule, "coursenav-banned-symbol");
}

TEST(MutexAnnotationRuleTest, FlagsRawStdPrimitivesInSrc) {
  std::vector<std::string> hits =
      LintRuleHits("src/serve/widget.h",
                   "#pragma once\n"
                   "std::mutex mu_;\n"
                   "std::condition_variable cv_;\n",
                   "coursenav-mutex-annotation");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_NE(hits[0].find("std::mutex"), std::string::npos);
  EXPECT_NE(hits[0].find("coursenav::Mutex"), std::string::npos);
  EXPECT_NE(hits[1].find("std::condition_variable"), std::string::npos);
}

TEST(MutexAnnotationRuleTest, FlagsMutexMemberWithoutGuardedByConsumer) {
  std::vector<std::string> hits =
      LintRuleHits("src/exec/widget.h",
                   "class W {\n"
                   "  mutable Mutex mu_;\n"
                   "  int count_ = 0;\n"
                   "};\n",
                   "coursenav-mutex-annotation");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].find(":2:"), std::string::npos);
  EXPECT_NE(hits[0].find("'mu_'"), std::string::npos);
  EXPECT_NE(hits[0].find("CN_GUARDED_BY"), std::string::npos);
}

TEST(MutexAnnotationRuleTest, FlagsUnjustifiedEscapeHatch) {
  EXPECT_EQ(LintRuleHits("src/obs/widget.cc",
                         "void Tick() CN_NO_THREAD_SAFETY_ANALYSIS {\n"
                         "}\n",
                         "coursenav-mutex-annotation")
                .size(),
            1u);
}

TEST(MutexAnnotationRuleTest, AdjacentCommentJustifiesEscapeHatch) {
  EXPECT_TRUE(
      LintRuleHits("src/obs/widget.cc",
                   "// Benign counter race: stats only, off the hot path.\n"
                   "void Tick() CN_NO_THREAD_SAFETY_ANALYSIS {\n"
                   "}\n",
                   "coursenav-mutex-annotation")
          .empty());
}

TEST(MutexAnnotationRuleTest, CleanOnGuardedMembersAndExemptFiles) {
  // A consumed Mutex member passes; CN_REQUIRES counts as consumption too.
  EXPECT_TRUE(
      LintRuleHits("src/serve/widget.h",
                   "class W {\n"
                   "  void PokeLocked() CN_REQUIRES(mu_);\n"
                   "  mutable Mutex mu_;\n"
                   "  int hits_ CN_GUARDED_BY(mu_) = 0;\n"
                   "};\n",
                   "coursenav-mutex-annotation")
          .empty());
  // The wrapper's own implementation is the one home of std primitives.
  EXPECT_TRUE(LintRuleHits("src/util/mutex.h", "std::mutex mu_;\n",
                           "coursenav-mutex-annotation")
                  .empty());
  // Code outside src/ owns its own locking.
  EXPECT_TRUE(LintRuleHits("tools/coursenav_cli.cc", "std::mutex mu;\n",
                           "coursenav-mutex-annotation")
                  .empty());
}

TEST(MutexAnnotationRuleTest, SuppressedByNolint) {
  EXPECT_TRUE(LintRuleHits("src/exec/widget.h",
                           "Mutex unused_;  // NOLINT(coursenav-mutex-annotation)\n",
                           "coursenav-mutex-annotation")
                  .empty());
}

TEST(LockOrderRuleTest, FlagsAcquisitionAgainstDeclaredOrder) {
  // The default registry (tools/lint/lock_order.txt) is outermost-first:
  // lifecycle_mu_, slo_mu_, mu_, mu.
  std::vector<std::string> hits =
      LintRuleHits("src/serve/widget.cc",
                   "void F() {\n"
                   "  MutexLock inner(mu_);\n"
                   "  MutexLock outer(lifecycle_mu_);\n"
                   "}\n",
                   "coursenav-lock-order");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].find(":3:"), std::string::npos);
  EXPECT_NE(hits[0].find("lock-order violation"), std::string::npos);
}

TEST(LockOrderRuleTest, FlagsSelfReacquisitionThroughMemberSyntax) {
  // `ticket->mu` normalizes to `mu`, colliding with the held `mu`.
  std::vector<std::string> hits =
      LintRuleHits("src/serve/widget.cc",
                   "void F(Ticket* ticket) {\n"
                   "  MutexLock a(mu);\n"
                   "  MutexLock b(ticket->mu);\n"
                   "}\n",
                   "coursenav-lock-order");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].find("self-deadlock"), std::string::npos);
}

TEST(LockOrderRuleTest, FlagsCycleAcrossFunctionsInOneFile) {
  // F takes alpha then beta; G takes beta then alpha: neither acquisition
  // breaks the registry (unranked names), but together they deadlock.
  std::vector<std::string> hits =
      LintRuleHits("src/exec/widget.cc",
                   "void F() {\n"
                   "  MutexLock a(alpha_lock);\n"
                   "  MutexLock b(beta_lock);\n"
                   "}\n"
                   "void G() {\n"
                   "  MutexLock b(beta_lock);\n"
                   "  MutexLock a(alpha_lock);\n"
                   "}\n",
                   "coursenav-lock-order");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].find("lock-order cycle"), std::string::npos);
  EXPECT_NE(hits[0].find("alpha_lock"), std::string::npos);
  EXPECT_NE(hits[0].find("beta_lock"), std::string::npos);
}

TEST(LockOrderRuleTest, CleanOnOrderedAndSequentialAcquisition) {
  // Nested in declared order, and sequential (non-overlapping) scopes.
  EXPECT_TRUE(
      LintRuleHits("src/serve/widget.cc",
                   "void F() {\n"
                   "  MutexLock outer(lifecycle_mu_);\n"
                   "  MutexLock inner(slo_mu_);\n"
                   "}\n"
                   "void G() {\n"
                   "  { MutexLock a(mu_); }\n"
                   "  { MutexLock b(lifecycle_mu_); }\n"
                   "}\n",
                   "coursenav-lock-order")
          .empty());
  // std scoped-lock shapes parse the same way.
  EXPECT_TRUE(
      LintRuleHits("tools/widget.cc",
                   "void F() {\n"
                   "  std::lock_guard<std::mutex> lock(tally.mu);\n"
                   "}\n",
                   "coursenav-lock-order")
          .empty());
}

TEST(LockOrderRuleTest, RegistryIsReplaceable) {
  std::vector<std::string> saved = lint::LockOrder();
  lint::SetLockOrder({"outer_mu", "inner_mu"});
  EXPECT_EQ(LintRuleHits("src/core/widget.cc",
                         "void F() {\n"
                         "  MutexLock a(inner_mu);\n"
                         "  MutexLock b(outer_mu);\n"
                         "}\n",
                         "coursenav-lock-order")
                .size(),
            1u);
  lint::SetLockOrder(saved);
  EXPECT_TRUE(LintRuleHits("src/core/widget.cc",
                           "void F() {\n"
                           "  MutexLock a(inner_mu);\n"
                           "  MutexLock b(outer_mu);\n"
                           "}\n",
                           "coursenav-lock-order")
                  .empty());
}

TEST(LockOrderRuleTest, SuppressedByNolint) {
  EXPECT_TRUE(
      LintRuleHits("src/serve/widget.cc",
                   "void F() {\n"
                   "  MutexLock inner(mu_);\n"
                   "  MutexLock outer(lifecycle_mu_);"
                   "  // NOLINT(coursenav-lock-order)\n"
                   "}\n",
                   "coursenav-lock-order")
          .empty());
}

TEST(HotPathRuleTest, FlagsAllocationBlockingAndLockingInRegion) {
  std::vector<std::string> hits =
      LintRuleHits("src/expr/widget.cc",
                   "// coursenav:hot — kernel\n"
                   "void K(std::vector<int>& v) {\n"
                   "  v.push_back(1);\n"
                   "  MutexLock lock(mu_);\n"
                   "  printf(\"x\");\n"
                   "}\n"
                   "// coursenav:hot-end\n"
                   "void Setup(std::vector<int>& v) { v.reserve(64); }\n",
                   "coursenav-hot-path");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_NE(hits[0].find("'push_back' may allocate"), std::string::npos);
  EXPECT_NE(hits[1].find("'MutexLock' acquires a lock"), std::string::npos);
  EXPECT_NE(hits[2].find("'printf' blocks"), std::string::npos);
}

TEST(HotPathRuleTest, FlagsUnclosedAndDanglingMarkers) {
  std::vector<std::string> unclosed =
      LintRuleHits("src/expr/widget.cc",
                   "// coursenav:hot\n"
                   "int f();\n",
                   "coursenav-hot-path");
  ASSERT_EQ(unclosed.size(), 1u);
  EXPECT_NE(unclosed[0].find("unclosed"), std::string::npos);
  std::vector<std::string> dangling = LintRuleHits(
      "src/expr/widget.cc", "// coursenav:hot-end\n", "coursenav-hot-path");
  ASSERT_EQ(dangling.size(), 1u);
  EXPECT_NE(dangling[0].find("without an open"), std::string::npos);
}

TEST(HotPathRuleTest, MarkerMustLeadItsOwnCommentLine) {
  // Prose mentions and string literals never open a region.
  EXPECT_TRUE(
      LintRuleHits("src/expr/widget.cc",
                   "// See the coursenav:hot region in dnf.cc for details.\n"
                   "const char* tag = \"coursenav:hot\";\n"
                   "void Setup(std::vector<int>& v) { v.reserve(64); }\n",
                   "coursenav-hot-path")
          .empty());
}

TEST(HotPathRuleTest, CleanOnPureKernels) {
  EXPECT_TRUE(LintRuleHits("src/util/simd/widget.cc",
                           "// coursenav:hot — word loops only\n"
                           "int Popcount(const uint64_t* a, size_t n) {\n"
                           "  int total = 0;\n"
                           "  for (size_t i = 0; i < n; ++i) {\n"
                           "    total += PopcountWord(a[i]);\n"
                           "  }\n"
                           "  return total;\n"
                           "}\n"
                           "// coursenav:hot-end\n",
                           "coursenav-hot-path")
                  .empty());
}

TEST(HotPathRuleTest, SuppressedByNolint) {
  EXPECT_TRUE(
      LintRuleHits("src/expr/widget.cc",
                   "// coursenav:hot\n"
                   "void K(Buf& b) { b.resize(1); }"
                   "  // NOLINT(coursenav-hot-path)\n"
                   "// coursenav:hot-end\n",
                   "coursenav-hot-path")
          .empty());
}

// NOLINT hygiene is a driver-level pass, so it is exercised through the
// all-rules LintContent entry point.
TEST(LintDriverTest, FlagsUnknownCoursenavRuleInNolint) {
  std::vector<Finding> findings = LintContent(
      "src/core/engine.cc",
      "int x = 1;  // NOLINT(coursenav-nonexistent)\n");  // NOLINT(coursenav-nolint)
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "coursenav-nolint");
  EXPECT_NE(findings[0].message.find("coursenav-nonexistent"),
            std::string::npos);
}

TEST(LintDriverTest, UnknownNolintRuleDoesNotSuppress) {
  std::vector<Finding> findings = LintContent(
      "src/core/engine.cc",
      "int x = rand();  // NOLINT(coursenav-band-symbol)\n");  // NOLINT(coursenav-nolint)
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "coursenav-banned-symbol");
  EXPECT_EQ(findings[1].rule, "coursenav-nolint");
}

TEST(LintDriverTest, ClangTidyNolintIdsPassThrough) {
  EXPECT_TRUE(LintContent("src/core/engine.cc",
                          "int x = 1;  // NOLINT(bugprone-branch-clone)\n")
                  .empty());
}

TEST(LintDriverTest, NolintFindingIsItselfSuppressible) {
  EXPECT_TRUE(
      LintContent(
          "src/core/engine.cc",
          "int x = 1;  // NOLINT(coursenav-legacy-rule, coursenav-nolint)\n")  // NOLINT(coursenav-nolint)
          .empty());
}

// ---------------------------------------------------------------------------
// CN_CHECK contracts.
// ---------------------------------------------------------------------------

/// Thrown by the installed test handler in place of abort().
struct CheckFailed : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void ThrowOnCheckFailure(const std::string& message) {
  throw CheckFailed(message);
}

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override { SetCheckFailureHandler(&ThrowOnCheckFailure); }
  void TearDown() override { SetCheckFailureHandler(nullptr); }

  /// Runs `fn`, which must trip a check, and returns the failure message.
  template <typename Fn>
  std::string FailureMessage(Fn fn) {
    try {
      fn();
    } catch (const CheckFailed& failure) {
      return failure.what();
    }
    ADD_FAILURE() << "expected a check failure";
    return "";
  }
};

TEST_F(CheckTest, PassingChecksAreSilent) {
  CN_CHECK(1 + 1 == 2) << "never rendered";
  CN_CHECK_EQ(2, 2);
  CN_CHECK_LT(1, 2) << "never rendered";
}

TEST_F(CheckTest, FailureMessageCarriesConditionAndContext) {
  std::string message =
      FailureMessage([] { CN_CHECK(2 < 1) << "ctx " << 42; });
  EXPECT_NE(message.find("CN_CHECK(2 < 1) failed"), std::string::npos);
  EXPECT_NE(message.find(": ctx 42"), std::string::npos);
  EXPECT_NE(message.find("lint_test.cc"), std::string::npos);
}

TEST_F(CheckTest, OpChecksPrintBothOperands) {
  std::string message = FailureMessage([] {
    int lhs = 3;
    int rhs = 7;
    CN_CHECK_EQ(lhs, rhs) << "ids diverged";
  });
  EXPECT_NE(message.find("CN_CHECK_EQ(lhs, rhs) failed"), std::string::npos);
  EXPECT_NE(message.find("(3 vs. 7)"), std::string::npos);
  EXPECT_NE(message.find("ids diverged"), std::string::npos);
}

TEST_F(CheckTest, OpChecksEvaluateOperandsOnce) {
  int evaluations = 0;
  auto next = [&evaluations] { return ++evaluations; };
  CN_CHECK_GE(next(), 1);
  EXPECT_EQ(evaluations, 1);
}

TEST_F(CheckTest, StreamedOperandsAreLazy) {
  bool rendered = false;
  auto render = [&rendered] {
    rendered = true;
    return "message";
  };
  CN_CHECK(true) << render();
  EXPECT_FALSE(rendered);
}

TEST_F(CheckTest, UnreachableAlwaysFires) {
  std::string message =
      FailureMessage([] { CN_UNREACHABLE() << "kind " << 9; });
  EXPECT_NE(message.find("CN_UNREACHABLE()"), std::string::npos);
  EXPECT_NE(message.find("kind 9"), std::string::npos);
}

TEST_F(CheckTest, DisabledDcheckNeverEvaluates) {
  // In dcheck builds these run (and pass); in regular builds the operands
  // sit in a dead branch and must not be evaluated.
  int evaluations = 0;
  auto next = [&evaluations] { return ++evaluations; };
  CN_DCHECK(next() > 0);
  CN_DCHECK_GE(next(), 0);
  if (CN_DCHECK_IS_ON()) {
    EXPECT_EQ(evaluations, 2);
  } else {
    EXPECT_EQ(evaluations, 0);
  }
}

// ---------------------------------------------------------------------------
// LearningGraph::CheckInvariants against hand-corrupted graphs.
// ---------------------------------------------------------------------------

class GraphInvariantsTest : public CheckTest {
 protected:
  static DynamicBitset Bits(std::initializer_list<int> ids) {
    DynamicBitset bits(4);
    for (int id : ids) bits.set(id);
    return bits;
  }

  /// root --{0}--> a --{1}--> b, plus root --{1}--> c.
  LearningGraph MakeValidGraph() {
    LearningGraph graph;
    NodeId root =
        graph.AddRoot(Term(Season::kFall, 2012), Bits({}), Bits({0, 1}));
    NodeId a = graph.AddChild(root, Bits({0}), Bits({0}), Bits({1, 2}));
    graph.AddChild(a, Bits({1}), Bits({0, 1}), Bits({2}));
    graph.AddChild(root, Bits({1}), Bits({1}), Bits({0}));
    return graph;
  }
};

TEST_F(GraphInvariantsTest, ValidGraphPasses) {
  LearningGraph graph = MakeValidGraph();
  graph.CheckInvariants();  // must not throw
}

TEST_F(GraphInvariantsTest, RejectsBrokenTermAdvance) {
  LearningGraph graph = MakeValidGraph();
  // Child claims the same semester as its parent — were parent links ever
  // cyclic, some edge would have to stall or rewind the term like this.
  LearningNode& child = LearningGraphTestPeer::MutableNode(graph, 1);
  child.term = graph.node(0).term;
  std::string message = FailureMessage([&] { graph.CheckInvariants(); });
  EXPECT_NE(message.find("CN_CHECK"), std::string::npos);
}

TEST_F(GraphInvariantsTest, RejectsEdgeEndpointMismatch) {
  LearningGraph graph = MakeValidGraph();
  LearningEdge& edge = LearningGraphTestPeer::MutableEdge(
      graph, graph.node(1).parent_edge);
  edge.to = 2;  // edge now claims to produce a different node
  FailureMessage([&] { graph.CheckInvariants(); });
}

TEST_F(GraphInvariantsTest, RejectsSelectionOutsideParentOptions) {
  LearningGraph graph = MakeValidGraph();
  LearningEdge& edge = LearningGraphTestPeer::MutableEdge(
      graph, graph.node(1).parent_edge);
  edge.selection = Bits({3});  // 3 was never in the root's options
  FailureMessage([&] { graph.CheckInvariants(); });
}

TEST_F(GraphInvariantsTest, RejectsCompletedSetAlgebraViolation) {
  LearningGraph graph = MakeValidGraph();
  LearningNode& child = LearningGraphTestPeer::MutableNode(graph, 1);
  child.completed = Bits({});  // X_child must equal X_parent ∪ W
  FailureMessage([&] { graph.CheckInvariants(); });
}

TEST_F(GraphInvariantsTest, RejectsOrphanedParentLink) {
  LearningGraph graph = MakeValidGraph();
  LearningNode& child = LearningGraphTestPeer::MutableNode(graph, 1);
  child.parent_edge = kInvalidEdgeId;  // non-root node with no parent
  FailureMessage([&] { graph.CheckInvariants(); });
}

TEST_F(GraphInvariantsTest, RejectsMixedBitsetUniverses) {
  LearningGraph graph = MakeValidGraph();
  LearningNode& child = LearningGraphTestPeer::MutableNode(graph, 1);
  child.completed = DynamicBitset(9);  // wrong universe size
  FailureMessage([&] { graph.CheckInvariants(); });
}

}  // namespace
}  // namespace coursenav

// Functional contract of the annotated synchronization wrappers
// (src/util/mutex.h). The attributes themselves are checked statically —
// by Clang -Wthread-safety in the thread-safety CI job and by the negative
// TUs under tests/thread_safety/ — so these tests pin down the runtime
// behavior the wrappers must preserve: mutual exclusion, BasicLockable
// conformance, and CondVar's release/reacquire protocol.
#include "util/mutex.h"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

namespace coursenav {
namespace {

TEST(MutexTest, ProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrementsPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter, kThreads * kIncrementsPerThread);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  mu.lock();
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(MutexTest, SatisfiesStandardLockableConcept) {
  // std::scoped_lock only needs lock()/unlock()/try_lock(); the wrapper
  // must remain a drop-in for standard lock adapters.
  Mutex mu;
  {
    std::scoped_lock lock(mu);
    EXPECT_FALSE(mu.try_lock());
  }
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(CondVarTest, WaitReleasesAndReacquiresTheMutex) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    // Wait() must have reacquired mu before returning: this write races
    // with the notifier's critical section otherwise (TSan would flag it).
    observed = true;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  MutexLock lock(mu);
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int awake = 0;
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& waiter : waiters) waiter.join();
  MutexLock lock(mu);
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace coursenav

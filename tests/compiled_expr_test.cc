#include "expr/compiled_expr.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "expr/parser.h"
#include "util/random.h"

namespace coursenav::expr {
namespace {

/// Resolver over a fixed name table A..H -> 0..7.
VarResolver TableResolver() {
  return [](std::string_view name) -> Result<int> {
    if (name.size() == 1 && name[0] >= 'A' && name[0] <= 'H') {
      return name[0] - 'A';
    }
    return Status::NotFound("unknown var '" + std::string(name) + "'");
  };
}

DynamicBitset Bits(std::initializer_list<int> ids) {
  DynamicBitset b(8);
  for (int id : ids) b.set(id);
  return b;
}

TEST(CompiledExprTest, DefaultIsAlwaysTrue) {
  CompiledExpr e;
  EXPECT_TRUE(e.IsAlwaysTrue());
  EXPECT_TRUE(e.Eval(DynamicBitset(8)));
}

TEST(CompiledExprTest, SimpleVar) {
  auto e = CompiledExpr::Compile(Expr::Var("B"), TableResolver());
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e->Eval(Bits({})));
  EXPECT_TRUE(e->Eval(Bits({1})));
  EXPECT_FALSE(e->IsAlwaysTrue());
}

TEST(CompiledExprTest, UnknownVarFailsCompilation) {
  auto e = CompiledExpr::Compile(Expr::Var("Z"), TableResolver());
  EXPECT_FALSE(e.ok());
  EXPECT_TRUE(e.status().IsNotFound());
}

TEST(CompiledExprTest, ReferencedIdsSortedUnique) {
  auto e = CompiledExpr::Compile(
      *ParseBoolExpr("C and A or C and B"), TableResolver());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->referenced_ids(), (std::vector<int>{0, 1, 2}));
}

TEST(CompiledExprTest, NestedExpression) {
  auto e = CompiledExpr::Compile(*ParseBoolExpr("(A or B) and not C"),
                                 TableResolver());
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e->Eval(Bits({0})));
  EXPECT_TRUE(e->Eval(Bits({1})));
  EXPECT_FALSE(e->Eval(Bits({0, 2})));
  EXPECT_FALSE(e->Eval(Bits({})));
}

/// Property: compiled evaluation agrees with tree evaluation on random
/// expressions and random assignments.
class CompiledEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

Expr RandomExpr(Random& rng, int depth) {
  if (depth == 0 || rng.Bernoulli(0.3)) {
    return Expr::Var(std::string(1, static_cast<char>(
                                        'A' + rng.UniformInt(0, 7))));
  }
  switch (rng.UniformInt(0, 2)) {
    case 0: {
      std::vector<Expr> ops;
      int n = rng.UniformInt(2, 3);
      for (int i = 0; i < n; ++i) ops.push_back(RandomExpr(rng, depth - 1));
      return Expr::And(std::move(ops));
    }
    case 1: {
      std::vector<Expr> ops;
      int n = rng.UniformInt(2, 3);
      for (int i = 0; i < n; ++i) ops.push_back(RandomExpr(rng, depth - 1));
      return Expr::Or(std::move(ops));
    }
    default:
      return Expr::Not(RandomExpr(rng, depth - 1));
  }
}

TEST_P(CompiledEquivalenceTest, AgreesWithTreeEval) {
  Random rng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    Expr tree = RandomExpr(rng, 4);
    auto compiled = CompiledExpr::Compile(tree, TableResolver());
    ASSERT_TRUE(compiled.ok());
    for (int assignment = 0; assignment < 256; ++assignment) {
      DynamicBitset bits(8);
      for (int i = 0; i < 8; ++i) {
        if ((assignment >> i) & 1) bits.set(i);
      }
      bool expected = tree.Eval([&](std::string_view name) {
        return bits.test(name[0] - 'A');
      });
      EXPECT_EQ(compiled->Eval(bits), expected)
          << tree.ToString() << " @ " << bits.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(CompiledExprTest, DeepExpressionUsesHeapStack) {
  // Build a left-leaning chain deeper than the inline stack capacity.
  Expr chain = Expr::Var("A");
  for (int i = 0; i < 100; ++i) {
    chain = Expr::And({chain, Expr::Var("B")});
  }
  auto compiled = CompiledExpr::Compile(chain, TableResolver());
  ASSERT_TRUE(compiled.ok());
  EXPECT_GT(compiled->ProgramSize(), 64);
  EXPECT_TRUE(compiled->Eval(Bits({0, 1})));
  EXPECT_FALSE(compiled->Eval(Bits({0})));
}

TEST(CompiledExprTest, WideBooleansStraddleBitStackCapacity) {
  // An n-ary connective pushes all its operands before reducing, so width
  // == peak stack depth: widths 63..65 straddle the 64-slot bit-stack /
  // heap-stack boundary. Both evaluators must agree on the semantics.
  for (int width : {63, 64, 65, 130}) {
    std::vector<Expr> args;
    for (int i = 0; i < width; ++i) {
      args.push_back(Expr::Var(i % 2 != 0 ? "B" : "A"));
    }
    std::vector<Expr> or_args = args;
    auto conj = CompiledExpr::Compile(Expr::And(std::move(args)),
                                      TableResolver());
    ASSERT_TRUE(conj.ok()) << width;
    EXPECT_TRUE(conj->Eval(Bits({0, 1}))) << width;
    EXPECT_FALSE(conj->Eval(Bits({0}))) << width;
    EXPECT_FALSE(conj->Eval(Bits({}))) << width;
    auto disj = CompiledExpr::Compile(Expr::Or(std::move(or_args)),
                                      TableResolver());
    ASSERT_TRUE(disj.ok()) << width;
    EXPECT_TRUE(disj->Eval(Bits({1}))) << width;
    EXPECT_FALSE(disj->Eval(Bits({2}))) << width;
    // Negation flips in place at the top of either stack.
    std::vector<Expr> neg_args;
    for (int i = 0; i < width; ++i) {
      neg_args.push_back(Expr::Not(Expr::Var(i % 2 != 0 ? "B" : "A")));
    }
    auto neg = CompiledExpr::Compile(Expr::And(std::move(neg_args)),
                                     TableResolver());
    ASSERT_TRUE(neg.ok()) << width;
    EXPECT_TRUE(neg->Eval(Bits({2}))) << width;
    EXPECT_FALSE(neg->Eval(Bits({0}))) << width;
  }
}

}  // namespace
}  // namespace coursenav::expr

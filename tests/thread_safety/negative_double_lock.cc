// Must NOT compile under -Wthread-safety -Werror: acquires the same
// non-recursive Mutex twice in one scope ("acquiring mutex 'mu' that is
// already held").
#include "util/mutex.h"

int main() {
  coursenav::Mutex mu;
  coursenav::MutexLock outer(mu);
  // The static analyzers agree this is a self-deadlock: coursenav-lint's
  // lock-order rule flags it too, hence the suppression.
  coursenav::MutexLock inner(mu);  // NOLINT(coursenav-lock-order)
  return 0;
}

// Must NOT compile under -Wthread-safety -Werror: calls a CN_REQUIRES
// method without holding the mutex it names ("calling function
// 'DrainLocked' requires holding mutex 'mu_' exclusively").
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Queue {
 public:
  void Drain() { DrainLocked(); }  // violation: mu_ not held

 private:
  void DrainLocked() CN_REQUIRES(mu_) { size_ = 0; }

  coursenav::Mutex mu_;
  int size_ CN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  queue.Drain();
  return 0;
}

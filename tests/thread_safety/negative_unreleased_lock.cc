// Must NOT compile under -Wthread-safety -Werror: a bare lock() with no
// matching unlock() on some path ("mutex 'mu' is still held at the end of
// function").
#include "util/mutex.h"

namespace {

void LeakLock(coursenav::Mutex& mu, bool flaky) {
  mu.lock();
  if (flaky) return;  // violation: early return leaks the lock
  mu.unlock();
}

}  // namespace

int main() {
  coursenav::Mutex mu;
  LeakLock(mu, false);
  return 0;
}

// MUST compile clean under -Wthread-safety -Werror: the same primitives the
// negative_*.cc TUs misuse, used correctly. If this control fails, the
// harness itself is broken (include paths, macro definitions, flags) and
// the WILL_FAIL results of the negatives prove nothing.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    coursenav::MutexLock lock(mu_);
    ++hits_;
    DrainLocked();
  }

 private:
  void DrainLocked() CN_REQUIRES(mu_) { hits_ = 0; }

  coursenav::Mutex mu_;
  int hits_ CN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Bump();
  return 0;
}

// Must NOT compile under -Wthread-safety -Werror: writes a CN_GUARDED_BY
// member without holding its mutex ("writing variable 'hits_' requires
// holding mutex 'mu_' exclusively").
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() { ++hits_; }  // violation: mu_ not held

 private:
  coursenav::Mutex mu_;
  int hits_ CN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Bump();
  return 0;
}

#include "service/session.h"

#include <gtest/gtest.h>

#include "requirements/expr_goal.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::Figure3Fixture;

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() {
    auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix_.catalog);
    EXPECT_TRUE(goal.ok());
    goal_ = *goal;
  }

  ExplorationSession MakeSession() {
    return ExplorationSession(&fix_.catalog, &fix_.schedule, goal_,
                              fix_.FreshStudent(), fix_.spring13);
  }

  Figure3Fixture fix_;
  std::shared_ptr<const Goal> goal_;
};

TEST_F(SessionTest, CommitAdvancesAndUndoReverts) {
  ExplorationSession session = MakeSession();
  EXPECT_EQ(session.status().term, fix_.fall11);
  ASSERT_TRUE(session.Commit({"11A", "29A"}).ok());
  EXPECT_EQ(session.status().term, fix_.fall11.Next());
  EXPECT_EQ(session.status().completed.count(), 2);
  EXPECT_EQ(session.history().size(), 1u);

  ASSERT_TRUE(session.Undo().ok());
  EXPECT_EQ(session.status().term, fix_.fall11);
  EXPECT_TRUE(session.status().completed.empty());
  EXPECT_TRUE(session.Undo().IsFailedPrecondition());
}

TEST_F(SessionTest, CommitValidatesElectability) {
  ExplorationSession session = MakeSession();
  // 21A requires 11A: not electable in Fall'11.
  EXPECT_TRUE(session.Commit({"21A"}).IsInvalidArgument());
  // Unknown course.
  EXPECT_TRUE(session.Commit({"99Z"}).IsNotFound());
  // Over the load limit.
  ASSERT_TRUE(session.SetMaxLoad(1).ok());
  EXPECT_TRUE(session.Commit({"11A", "29A"}).IsInvalidArgument());
}

TEST_F(SessionTest, SkipCommit) {
  ExplorationSession session = MakeSession();
  ASSERT_TRUE(session.Commit({"29A"}).ok());
  // Spring'12 with only 29A: nothing electable; empty commit advances.
  EXPECT_TRUE(session.CurrentOptions().empty());
  ASSERT_TRUE(session.Commit({}).ok());
  EXPECT_EQ(session.status().term, fix_.fall11 + 2);
}

TEST_F(SessionTest, GoalReachedAndRemainingPaths) {
  ExplorationSession session = MakeSession();
  auto remaining = session.RemainingGoalPaths();
  ASSERT_TRUE(remaining.ok());
  EXPECT_GT(*remaining, 0u);

  ASSERT_TRUE(session.Commit({"11A", "29A"}).ok());
  ASSERT_TRUE(session.Commit({"21A"}).ok());
  EXPECT_TRUE(session.GoalReached());
  EXPECT_EQ(*session.RemainingGoalPaths(), 1u);
}

TEST_F(SessionTest, RemainingPathsCacheInvalidatedByMutation) {
  ExplorationSession session = MakeSession();
  uint64_t before = *session.RemainingGoalPaths();
  // Avoiding 21A kills every goal path.
  ASSERT_TRUE(session.Avoid("21A").ok());
  uint64_t after = *session.RemainingGoalPaths();
  EXPECT_GT(before, 0u);
  EXPECT_EQ(after, 0u);
  ASSERT_TRUE(session.Unavoid("21A").ok());
  EXPECT_EQ(*session.RemainingGoalPaths(), before);
}

TEST_F(SessionTest, AvoidCompletedCourseFails) {
  ExplorationSession session = MakeSession();
  ASSERT_TRUE(session.Commit({"11A"}).ok());
  EXPECT_TRUE(session.Avoid("11A").IsFailedPrecondition());
}

TEST_F(SessionTest, SetDeadlineValidation) {
  ExplorationSession session = MakeSession();
  EXPECT_TRUE(session.SetDeadline(fix_.fall11).IsInvalidArgument());
  EXPECT_TRUE(session.SetDeadline(fix_.fall11 + 2).ok());
  EXPECT_EQ(session.deadline(), fix_.fall11 + 2);
}

TEST_F(SessionTest, EvaluateSelectionsRanksByFutures) {
  ExplorationSession session = MakeSession();
  auto impacts = session.EvaluateSelections();
  ASSERT_TRUE(impacts.ok());
  // Fall'11 candidates: {11A}, {29A}, {11A, 29A}.
  ASSERT_EQ(impacts->size(), 3u);
  // Descending by surviving paths; every candidate that keeps the goal
  // alive requires 11A (21A's prerequisite) eventually, and the double
  // selection preserves the most futures.
  EXPECT_GE((*impacts)[0].surviving_goal_paths,
            (*impacts)[1].surviving_goal_paths);
  EXPECT_GE((*impacts)[1].surviving_goal_paths,
            (*impacts)[2].surviving_goal_paths);
  // Taking only 29A in Fall'11 leaves no way to fit 11A before 21A's last
  // (only) offering in Spring'12... 11A reopens Fall'12 but 21A never
  // does, so zero goal paths survive.
  for (const SelectionImpact& impact : *impacts) {
    if (impact.selection.count() == 1 && impact.selection.test(fix_.c29a)) {
      EXPECT_EQ(impact.surviving_goal_paths, 0u);
    }
  }
}

TEST_F(SessionTest, TopKFromCurrentStatus) {
  ExplorationSession session = MakeSession();
  ASSERT_TRUE(session.Commit({"11A", "29A"}).ok());
  TimeRanking ranking;
  auto top = session.TopK(ranking, 1);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->paths.size(), 1u);
  EXPECT_EQ(top->paths[0].Length(), 1);  // just 21A next semester
}

TEST_F(SessionTest, CommitAfterDeadlineFails) {
  ExplorationSession session = MakeSession();
  ASSERT_TRUE(session.SetDeadline(fix_.fall11 + 1).ok());
  ASSERT_TRUE(session.Commit({"11A"}).ok());
  EXPECT_TRUE(session.Commit({"29A"}).IsFailedPrecondition());
  EXPECT_TRUE(session.EvaluateSelections().status().IsFailedPrecondition());
}

}  // namespace
}  // namespace coursenav

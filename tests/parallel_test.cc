// Determinism contract of the parallel frontier engine: for any worker
// count, a complete run must produce a graph byte-identical to the serial
// generator's (same node/edge numbering, same bitsets, same statistics),
// and a budget-truncated run must still produce a well-formed canonical
// graph. Also unit-tests the work-stealing deques and the worker pool the
// engine is built on.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/deadline_generator.h"
#include "core/goal_generator.h"
#include "data/brandeis_cs.h"
#include "exec/work_queue.h"
#include "exec/worker_pool.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

// Field-by-field graph/stats comparison lives in tests/test_util.h; the
// plan golden-equivalence suite shares it.
using testing_util::GraphDifference;
using testing_util::StatsDifference;

const std::vector<int> kThreadCounts = {1, 2, 4, 8};

TEST(ParallelDeterminismTest, DeadlineDrivenMatchesSerialAtEveryThreadCount) {
  testing_util::Figure3Fixture fixture;
  ExplorationOptions serial_options;
  auto serial = GenerateDeadlineDrivenPaths(fixture.catalog, fixture.schedule,
                                            fixture.FreshStudent(),
                                            fixture.spring13, serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(serial->termination.ok()) << serial->termination.ToString();
  ASSERT_EQ(testing_util::StructureErrors(serial->graph), "");

  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExplorationOptions options;
    options.num_threads = threads;
    auto parallel = GenerateDeadlineDrivenPaths(
        fixture.catalog, fixture.schedule, fixture.FreshStudent(),
        fixture.spring13, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_TRUE(parallel->termination.ok())
        << parallel->termination.ToString();
    EXPECT_EQ(GraphDifference(serial->graph, parallel->graph), "");
    EXPECT_EQ(StatsDifference(serial->stats, parallel->stats), "");
  }
}

TEST(ParallelDeterminismTest, GoalDrivenMatchesSerialOnBrandeisCatalog) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();
  EnrollmentStatus start{data::StartTermForSpan(5),
                         dataset.catalog.NewCourseSet()};

  ExplorationOptions serial_options;
  auto serial = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                        start, end, *dataset.cs_major,
                                        serial_options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(serial->termination.ok()) << serial->termination.ToString();
  // A real population (the paper's Table 2 regime) — the determinism
  // check below is only meaningful on a non-trivial graph.
  EXPECT_GT(serial->stats.goal_paths, 0);
  EXPECT_GT(serial->stats.nodes_created, 1000);

  for (int threads : kThreadCounts) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    ExplorationOptions options;
    options.num_threads = threads;
    auto parallel = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                            start, end, *dataset.cs_major,
                                            options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_TRUE(parallel->termination.ok())
        << parallel->termination.ToString();
    EXPECT_EQ(GraphDifference(serial->graph, parallel->graph), "");
    EXPECT_EQ(StatsDifference(serial->stats, parallel->stats), "");
  }
}

TEST(ParallelDeterminismTest, ParallelRunsAreRepeatable) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();
  EnrollmentStatus start{data::StartTermForSpan(4),
                         dataset.catalog.NewCourseSet()};
  ExplorationOptions options;
  options.num_threads = 4;

  auto first = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                       start, end, *dataset.cs_major, options);
  auto second = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                        start, end, *dataset.cs_major,
                                        options);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(GraphDifference(first->graph, second->graph), "");
}

// Budget-truncated parallel runs cannot promise serial-identical output
// (which worker hits the limit first is timing-dependent), but the partial
// graph must be canonical and well-formed and its stats must reconcile.
TEST(ParallelBudgetTest, NodeBudgetYieldsWellFormedPartialGraph) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();
  EnrollmentStatus start{data::StartTermForSpan(5),
                         dataset.catalog.NewCourseSet()};
  ExplorationOptions options;
  options.num_threads = 4;
  options.limits.max_nodes = 2000;

  auto result = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                        start, end, *dataset.cs_major,
                                        options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->termination.IsResourceExhausted())
      << result->termination.ToString();
  EXPECT_GE(result->stats.nodes_created, 2000);
  EXPECT_EQ(testing_util::StructureErrors(result->graph), "");
  EXPECT_EQ(testing_util::StatsErrors(result->graph, result->stats), "");
}

TEST(ParallelBudgetTest, CancellationStopsAllWorkersCleanly) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();
  EnrollmentStatus start{data::StartTermForSpan(6),
                         dataset.catalog.NewCourseSet()};
  ExplorationOptions options;
  options.num_threads = 4;
  options.cancel = CancellationToken::Cancellable();
  // Pre-cancelled: every worker must observe the flag at its first budget
  // check and return without expanding more than the seeded frontier.
  options.cancel.RequestCancel();

  auto result = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                        start, end, *dataset.cs_major,
                                        options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->termination.IsCancelled())
      << result->termination.ToString();
  EXPECT_EQ(testing_util::StructureErrors(result->graph), "");
  EXPECT_EQ(testing_util::StatsErrors(result->graph, result->stats), "");
}

TEST(WorkStealingQueuesTest, LocalPopIsLifo) {
  exec::WorkStealingQueues<int> queues(2);
  queues.Push(0, 1);
  queues.Push(0, 2);
  queues.Push(0, 3);
  int out = 0;
  ASSERT_TRUE(queues.TryPopLocal(0, &out));
  EXPECT_EQ(out, 3);
  ASSERT_TRUE(queues.TryPopLocal(0, &out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queues.TryPopLocal(1, &out));
}

TEST(WorkStealingQueuesTest, StealTakesHalfFromTheFront) {
  exec::WorkStealingQueues<int> queues(2);
  for (int i = 1; i <= 4; ++i) queues.Push(0, i);
  int out = 0;
  // Thief 1 steals ceil(4/2) = 2 items from the front: {1, 2}. The first
  // (oldest, shallowest) comes back directly; the second refills the
  // thief's deque.
  ASSERT_TRUE(queues.TrySteal(1, &out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queues.TryPopLocal(1, &out));
  EXPECT_EQ(out, 2);
  // The victim keeps its back half, still in LIFO order.
  ASSERT_TRUE(queues.TryPopLocal(0, &out));
  EXPECT_EQ(out, 4);
  ASSERT_TRUE(queues.TryPopLocal(0, &out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(queues.TrySteal(1, &out));
}

TEST(WorkStealingQueuesTest, ConcurrentPushPopStealLosesNothing) {
  constexpr int kWorkers = 4;
  constexpr int kItemsPerWorker = 5000;
  exec::WorkStealingQueues<int> queues(kWorkers);
  exec::WorkerPool pool(kWorkers);
  std::atomic<int64_t> sum{0};
  std::atomic<int> popped{0};

  pool.Run([&](int worker) {
    // Each worker seeds its own deque, then everyone drains every deque
    // via local pops and steals until all items are accounted for.
    for (int i = 0; i < kItemsPerWorker; ++i) {
      queues.Push(worker, worker * kItemsPerWorker + i);
    }
    int item = 0;
    while (popped.load(std::memory_order_acquire) <
           kWorkers * kItemsPerWorker) {
      if (queues.TryPopLocal(worker, &item) ||
          queues.TrySteal(worker, &item)) {
        sum.fetch_add(item, std::memory_order_relaxed);
        popped.fetch_add(1, std::memory_order_acq_rel);
      }
    }
  });

  const int64_t n = int64_t{kWorkers} * kItemsPerWorker;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(WorkerPoolTest, RunsBodyOnEveryWorkerEachRound) {
  exec::WorkerPool pool(3);
  EXPECT_EQ(pool.size(), 3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> mask{0};
    pool.Run([&](int worker) { mask.fetch_or(1 << worker); });
    EXPECT_EQ(mask.load(), 0b111);
  }
}

TEST(WorkerPoolTest, ClampsThreadCountToAtLeastOne) {
  exec::WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<int> calls{0};
  pool.Run([&](int) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

}  // namespace
}  // namespace coursenav

// End-to-end pipeline tests over the full system (Figure 2): registrar
// JSON -> Prerequisite/Schedule Parser -> Learning Path Generator ->
// Visualizer back ends, plus cross-algorithm consistency on the bundled
// evaluation dataset.

#include <gtest/gtest.h>

#include "core/counting.h"
#include "core/filters.h"
#include "data/brandeis_cs.h"
#include "graph/analytics.h"
#include "graph/export.h"
#include "parsers/catalog_loader.h"
#include "requirements/expr_goal.h"
#include "service/navigator.h"
#include "service/visualizer.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::GoalPaths;

constexpr const char* kRegistrarJson = R"({
  "courses": [
    {"code": "CS1", "title": "Intro", "workload": 7,
     "prerequisites": "Prerequisite: none.",
     "offered": ["Fall 2014", "Spring 2015", "Fall 2015"]},
    {"code": "MATH1", "title": "Discrete Math", "workload": 8,
     "offered": ["Fall 2014", "Spring 2015", "Fall 2015"]},
    {"code": "CS2", "title": "Data Structures", "workload": 9,
     "prerequisites": "Prerequisite: CS 1 or permission of the instructor.",
     "offered": ["Spring 2015", "Fall 2015"]},
    {"code": "CS3", "title": "Algorithms", "workload": 10,
     "prerequisites": "CS 2, MATH 1",
     "offered": ["Fall 2015"]}
  ]
})";

TEST(IntegrationTest, RegistrarJsonToRankedPathsToExports) {
  // Back end: parse the registrar bundle.
  auto bundle = LoadCatalogFromJson(kRegistrarJson);
  ASSERT_TRUE(bundle.ok());
  CourseNavigator navigator(&bundle->catalog, &bundle->schedule);

  // Front end: a fresh student wants CS3 by Spring 2016.
  auto goal = ExprGoal::CompleteAll({"CS3"}, bundle->catalog);
  ASSERT_TRUE(goal.ok());
  ExplorationRequest request;
  request.start = {Term(Season::kFall, 2014), bundle->catalog.NewCourseSet()};
  request.end_term = Term(Season::kSpring, 2016);
  request.type = TaskType::kRanked;
  request.goal = *goal;
  request.ranking = std::make_shared<TimeRanking>();
  request.top_k = 5;
  request.options.max_courses_per_term = 2;

  auto response = navigator.Explore(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->ranked.has_value());
  ASSERT_FALSE(response->ranked->paths.empty());

  // The shortest plan: CS1+MATH1, then CS2, then CS3 — 3 semesters.
  const LearningPath& best = response->ranked->paths[0];
  EXPECT_EQ(best.Length(), 3);
  EXPECT_TRUE(best.Validate(bundle->catalog, bundle->schedule).ok());
  EXPECT_TRUE((*goal)->IsSatisfied(best.FinalCompleted()));

  // Visualizer back ends accept the result.
  JsonValue json = LearningPathsToJson(response->ranked->paths,
                                       bundle->catalog);
  auto reparsed = JsonValue::Parse(json.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->array().size(), response->ranked->paths.size());
  std::string text = RenderPaths(response->ranked->paths, bundle->catalog);
  EXPECT_NE(text.find("CS3"), std::string::npos);
}

TEST(IntegrationTest, GeneratorsAgreeOnBrandeisSmallSpan) {
  // Cross-algorithm consistency on the evaluation dataset: materialized
  // goal-path count == DAG count == ranked full enumeration; deadline
  // count >= goal count.
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  CourseNavigator navigator(&dataset.catalog, &dataset.schedule);
  EnrollmentStatus start{data::StartTermForSpan(4),
                         dataset.catalog.NewCourseSet()};
  Term end = data::EvaluationEndTerm();
  ExplorationOptions options;

  auto goal_run = navigator.ExploreGoal(start, end, *dataset.cs_major,
                                        options);
  ASSERT_TRUE(goal_run.ok());
  ASSERT_TRUE(goal_run->termination.ok());

  auto counted = navigator.CountGoal(start, end, *dataset.cs_major, options);
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->goal_paths,
            static_cast<uint64_t>(goal_run->stats.goal_paths));
  EXPECT_EQ(counted->total_paths,
            static_cast<uint64_t>(goal_run->stats.terminal_paths));

  TimeRanking ranking;
  auto ranked = navigator.ExploreTopK(
      start, end, *dataset.cs_major, ranking,
      static_cast<int>(goal_run->stats.goal_paths) + 10, options);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(static_cast<int64_t>(ranked->paths.size()),
            goal_run->stats.goal_paths);

  auto deadline_count = navigator.CountDeadline(start, end, options);
  ASSERT_TRUE(deadline_count.ok());
  EXPECT_GE(deadline_count->total_paths, counted->total_paths);
}

TEST(IntegrationTest, FiltersComposeWithRankedOutput) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  CourseNavigator navigator(&dataset.catalog, &dataset.schedule);
  EnrollmentStatus start{data::StartTermForSpan(5),
                         dataset.catalog.NewCourseSet()};
  ExplorationOptions options;
  TimeRanking ranking;
  auto ranked = navigator.ExploreTopK(start, data::EvaluationEndTerm(),
                                      *dataset.cs_major, ranking, 50,
                                      options);
  ASSERT_TRUE(ranked.ok());
  ASSERT_FALSE(ranked->paths.empty());

  MaxTermWorkloadFilter light_terms(&dataset.catalog, 27.0);
  std::vector<LearningPath> kept =
      FilterPaths(ranked->paths, light_terms);
  EXPECT_LE(kept.size(), ranked->paths.size());
  for (const LearningPath& path : kept) {
    EXPECT_TRUE(light_terms.Keep(path));
  }
}

TEST(IntegrationTest, AnalyticsMatchesCountsOnGoalGraph) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  CourseNavigator navigator(&dataset.catalog, &dataset.schedule);
  EnrollmentStatus start{data::StartTermForSpan(4),
                         dataset.catalog.NewCourseSet()};
  ExplorationOptions options;
  auto run = navigator.ExploreGoal(start, data::EvaluationEndTerm(),
                                   *dataset.cs_major, options);
  ASSERT_TRUE(run.ok());
  GraphAnalytics analytics =
      AnalyzeLearningGraph(run->graph, dataset.catalog);
  EXPECT_EQ(analytics.goal_path_count,
            static_cast<uint64_t>(run->stats.goal_paths));
  // Every core course is on every goal path (all 7 are mandatory).
  for (const std::string& code : dataset.core_codes) {
    CourseId id = *dataset.catalog.FindByCode(code);
    EXPECT_DOUBLE_EQ(analytics.CriticalityOf(id), 1.0) << code;
  }
  // Cross-check one elective's count by brute force.
  CourseId elective = *dataset.catalog.FindByCode("COSI2A");
  uint64_t brute = 0;
  for (const LearningPath& path : GoalPaths(run->graph)) {
    if (path.FinalCompleted().test(elective)) ++brute;
  }
  EXPECT_EQ(analytics.course_path_counts[static_cast<size_t>(elective)],
            brute);
}

}  // namespace
}  // namespace coursenav

// Chaos tests for the parallel frontier engine: hammer multi-worker runs
// with deterministic fault injection (allocation failures, clock skew,
// schedule churn) and mid-flight cancellation from another thread, and
// assert every outcome is a clean status plus a well-formed canonical
// graph — never a crash, a hang, or a torn structure. TSan runs of this
// suite are the real assertion for the engine's memory model.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/deadline_generator.h"
#include "core/goal_generator.h"
#include "data/brandeis_cs.h"
#include "exec/worker_pool.h"
#include "tests/test_util.h"
#include "util/cancellation.h"
#include "util/fault_injection.h"

namespace coursenav {
namespace {

FaultConfig ChaosConfig(uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.site_probability[std::string(kFaultSiteGraphAlloc)] = 0.02;
  config.site_probability[std::string(kFaultSiteClockSkew)] = 0.05;
  config.site_probability[std::string(kFaultSiteScheduleChurn)] = 0.01;
  config.clock_skew_seconds = 0.01;
  return config;
}

bool IsCleanOutcome(const Status& status) {
  return status.ok() || status.IsResourceExhausted() ||
         status.IsDeadlineExceeded() || status.IsCancelled();
}

// The parallel analogue of the chaos seed sweep: every seed runs the
// goal-driven generator at 4 workers with faults armed; whatever the
// faults do, the result must be a clean termination and a structurally
// sound canonical graph whose stats reconcile.
TEST(ParallelChaosTest, SeedSweepWithFaultsArmed) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();
  EnrollmentStatus start{data::StartTermForSpan(4),
                         dataset.catalog.NewCourseSet()};

  for (uint64_t seed = 0; seed < 60; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ScopedFaultInjection scope(ChaosConfig(seed));

    ExplorationOptions options;
    options.num_threads = 4;
    options.limits.max_nodes = 2000;
    options.limits.max_seconds = 0.05;

    auto generated = GenerateGoalDrivenPaths(dataset.catalog,
                                             dataset.schedule, start, end,
                                             *dataset.cs_major, options);
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    EXPECT_TRUE(IsCleanOutcome(generated->termination))
        << generated->termination.ToString();
    ASSERT_EQ(testing_util::StructureErrors(generated->graph), "");
    ASSERT_EQ(testing_util::StatsErrors(generated->graph, generated->stats),
              "");
  }
}

// An allocation fault in one worker's shard must stop the whole run as
// ResourceExhausted while every shard's contribution stays well-formed.
TEST(ParallelChaosTest, AllocationFaultsStopAllWorkers) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  FaultConfig config;
  config.seed = 11;
  config.site_probability[std::string(kFaultSiteGraphAlloc)] = 1.0;
  ScopedFaultInjection scope(config);

  ExplorationOptions options;
  options.num_threads = 4;
  EnrollmentStatus start{data::StartTermForSpan(6),
                         dataset.catalog.NewCourseSet()};
  auto result = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                        start, data::EvaluationEndTerm(),
                                        *dataset.cs_major, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->termination.IsResourceExhausted())
      << result->termination.ToString();
  EXPECT_EQ(testing_util::StructureErrors(result->graph), "");
}

// Cancellation raced from another thread at staggered delays: the run must
// stop within one expansion per worker and return a cancelled (or, when
// the flag landed too late, complete) result with a coherent graph.
TEST(ParallelChaosTest, MidFlightCancellationLeavesCoherentGraphs) {
  data::BrandeisDataset dataset = data::BuildBrandeisDataset();
  Term end = data::EvaluationEndTerm();
  EnrollmentStatus start{data::StartTermForSpan(5),
                         dataset.catalog.NewCourseSet()};

  for (int delay_us : {0, 50, 200, 1000, 5000}) {
    SCOPED_TRACE("delay_us " + std::to_string(delay_us));
    ExplorationOptions options;
    options.num_threads = 4;
    options.cancel = CancellationToken::Cancellable();

    std::thread canceller([&options, delay_us] {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      options.cancel.RequestCancel();
    });
    auto result = GenerateGoalDrivenPaths(dataset.catalog, dataset.schedule,
                                          start, end, *dataset.cs_major,
                                          options);
    canceller.join();

    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->termination.ok() || result->termination.IsCancelled())
        << result->termination.ToString();
    EXPECT_EQ(testing_util::StructureErrors(result->graph), "");
    EXPECT_EQ(testing_util::StatsErrors(result->graph, result->stats), "");
  }
}

// Deadline generation under the same chaos regime (no oracle in play —
// exercises the goal-free expansion path).
TEST(ParallelChaosTest, DeadlineDrivenSurvivesFaultSweep) {
  testing_util::Figure3Fixture fixture;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ScopedFaultInjection scope(ChaosConfig(seed));
    ExplorationOptions options;
    options.num_threads = 4;
    options.limits.max_seconds = 0.05;
    auto result = GenerateDeadlineDrivenPaths(
        fixture.catalog, fixture.schedule, fixture.FreshStudent(),
        fixture.spring13, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(IsCleanOutcome(result->termination))
        << result->termination.ToString();
    EXPECT_EQ(testing_util::StructureErrors(result->graph), "");
    EXPECT_EQ(testing_util::StatsErrors(result->graph, result->stats), "");
  }
}

// Back-to-back rounds on one pool: round boundaries must fully quiesce
// (no body from round N observed in round N+1), and a body that returns
// immediately must not wedge the round barrier.
TEST(ParallelChaosTest, WorkerPoolSurvivesRapidRoundChurn) {
  exec::WorkerPool pool(4);
  std::atomic<int> round_sum{0};
  for (int round = 0; round < 500; ++round) {
    round_sum.store(0, std::memory_order_relaxed);
    pool.Run([&](int worker) {
      if (worker % 2 == round % 2) return;  // half the workers no-op
      round_sum.fetch_add(worker + 1, std::memory_order_relaxed);
    });
    // Workers 0..3 contribute worker+1 when (worker+round) is odd:
    // {2, 4} or {1, 3} depending on round parity.
    EXPECT_EQ(round_sum.load(), round % 2 == 0 ? 6 : 4);
  }
}

}  // namespace
}  // namespace coursenav

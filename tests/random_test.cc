#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace coursenav {
namespace {

TEST(RandomTest, SameSeedSameSequence) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RandomTest, UniformStaysInBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RandomTest, UniformIntInclusiveRange) {
  Random rng(9);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    int v = rng.UniformInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RandomTest, UniformDoubleInUnitInterval) {
  Random rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RandomTest, ShuffleIsPermutation) {
  Random rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RandomTest, SampleWithoutReplacementDistinctSorted) {
  Random rng(23);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<int> sample = rng.SampleWithoutReplacement(20, 5);
    ASSERT_EQ(sample.size(), 5u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    EXPECT_EQ(std::set<int>(sample.begin(), sample.end()).size(), 5u);
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(RandomTest, SampleFullRangeIsIdentity) {
  Random rng(29);
  std::vector<int> sample = rng.SampleWithoutReplacement(4, 4);
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(rng.SampleWithoutReplacement(4, 0).empty());
}

}  // namespace
}  // namespace coursenav

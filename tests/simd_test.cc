// Randomized differential tests for the set-algebra kernel dispatch layer:
// every kernel must produce bit-identical results from the portable scalar
// table and whatever table `Active()` selected on this machine, across the
// inline->heap storage boundary (1, 2, 3 words) and both the vector-width
// remainder (16 words) and the 10k-course scale (160 words).
#include "util/simd/simd.h"

#include <cstdint>
#include <random>
#include <vector>

#include "gtest/gtest.h"

namespace coursenav::simd {
namespace {

constexpr size_t kWordCounts[] = {1, 2, 3, 16, 160};
constexpr int kTrialsPerShape = 50;

std::vector<uint64_t> RandomWords(std::mt19937_64& rng, size_t n,
                                  int density_shift) {
  // density_shift folds several uniform draws together, biasing toward
  // sparse (AND of draws) or dense (OR of draws) sets so subset/intersect
  // paths see both verdicts often.
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) {
    uint64_t a = rng();
    uint64_t b = rng();
    if (density_shift < 0) {
      w = a & b;
    } else if (density_shift > 0) {
      w = a | b;
    } else {
      w = a;
    }
  }
  return words;
}

class SimdDifferentialTest : public ::testing::Test {
 protected:
  const Kernels& scalar_ = Scalar();
  const Kernels& active_ = Active();
};

TEST_F(SimdDifferentialTest, ActiveTableIsWellFormed) {
  EXPECT_NE(active_.name, nullptr);
  EXPECT_NE(active_.popcount, nullptr);
  EXPECT_NE(active_.and_not_popcount, nullptr);
  EXPECT_NE(active_.subset_of, nullptr);
  EXPECT_NE(active_.subset_of_union, nullptr);
  EXPECT_NE(active_.intersects, nullptr);
  EXPECT_NE(active_.union_inplace, nullptr);
  EXPECT_NE(active_.union_into, nullptr);
  EXPECT_NE(active_.intersect_inplace, nullptr);
  EXPECT_NE(active_.subtract_inplace, nullptr);
  EXPECT_NE(active_.equal, nullptr);
  EXPECT_NE(active_.count_unsatisfied_literals, nullptr);
#if defined(COURSENAV_FORCE_SCALAR)
  EXPECT_STREQ(active_.name, "scalar");
#endif
}

TEST_F(SimdDifferentialTest, PureKernelsMatchScalar) {
  std::mt19937_64 rng(20260808);
  for (size_t n : kWordCounts) {
    for (int trial = 0; trial < kTrialsPerShape; ++trial) {
      int density = trial % 3 - 1;
      std::vector<uint64_t> a = RandomWords(rng, n, density);
      std::vector<uint64_t> b = RandomWords(rng, n, -density);
      // Make subset verdicts frequently true, not just on empty sets.
      if (trial % 4 == 0) {
        for (size_t i = 0; i < n; ++i) a[i] &= b[i];
      }
      std::vector<uint64_t> c = RandomWords(rng, n, 0);

      EXPECT_EQ(scalar_.popcount(a.data(), n), active_.popcount(a.data(), n))
          << "popcount n=" << n << " trial=" << trial;
      EXPECT_EQ(scalar_.and_not_popcount(a.data(), b.data(), n),
                active_.and_not_popcount(a.data(), b.data(), n))
          << "and_not_popcount n=" << n << " trial=" << trial;
      EXPECT_EQ(scalar_.subset_of(a.data(), b.data(), n),
                active_.subset_of(a.data(), b.data(), n))
          << "subset_of n=" << n << " trial=" << trial;
      EXPECT_EQ(scalar_.subset_of_union(a.data(), b.data(), c.data(), n),
                active_.subset_of_union(a.data(), b.data(), c.data(), n))
          << "subset_of_union n=" << n << " trial=" << trial;
      EXPECT_EQ(scalar_.intersects(a.data(), b.data(), n),
                active_.intersects(a.data(), b.data(), n))
          << "intersects n=" << n << " trial=" << trial;
      EXPECT_EQ(scalar_.equal(a.data(), b.data(), n),
                active_.equal(a.data(), b.data(), n))
          << "equal n=" << n << " trial=" << trial;
      EXPECT_TRUE(scalar_.equal(a.data(), a.data(), n));
      EXPECT_TRUE(active_.equal(a.data(), a.data(), n));
    }
  }
}

TEST_F(SimdDifferentialTest, MutatingKernelsMatchScalar) {
  std::mt19937_64 rng(8082026);
  for (size_t n : kWordCounts) {
    for (int trial = 0; trial < kTrialsPerShape; ++trial) {
      std::vector<uint64_t> a = RandomWords(rng, n, trial % 3 - 1);
      std::vector<uint64_t> b = RandomWords(rng, n, 0);

      std::vector<uint64_t> s = a;
      std::vector<uint64_t> v = a;
      scalar_.union_inplace(s.data(), b.data(), n);
      active_.union_inplace(v.data(), b.data(), n);
      EXPECT_EQ(s, v) << "union_inplace n=" << n << " trial=" << trial;

      s = a;
      v = a;
      scalar_.intersect_inplace(s.data(), b.data(), n);
      active_.intersect_inplace(v.data(), b.data(), n);
      EXPECT_EQ(s, v) << "intersect_inplace n=" << n << " trial=" << trial;

      s = a;
      v = a;
      scalar_.subtract_inplace(s.data(), b.data(), n);
      active_.subtract_inplace(v.data(), b.data(), n);
      EXPECT_EQ(s, v) << "subtract_inplace n=" << n << " trial=" << trial;

      std::vector<uint64_t> s_out(n, 0xdeadbeefdeadbeefull);
      std::vector<uint64_t> v_out(n, 0x1234567812345678ull);
      scalar_.union_into(s_out.data(), a.data(), b.data(), n);
      active_.union_into(v_out.data(), a.data(), b.data(), n);
      EXPECT_EQ(s_out, v_out) << "union_into n=" << n << " trial=" << trial;
    }
  }
}

TEST_F(SimdDifferentialTest, CountUnsatisfiedLiteralsMatchesScalar) {
  std::mt19937_64 rng(424242);
  for (size_t stride : kWordCounts) {
    for (size_t num_clauses : {size_t{1}, size_t{3}, size_t{17}}) {
      for (int trial = 0; trial < kTrialsPerShape; ++trial) {
        std::vector<uint64_t> pos(stride * num_clauses);
        std::vector<uint64_t> neg(stride * num_clauses);
        for (size_t i = 0; i < pos.size(); ++i) {
          pos[i] = rng() & rng();  // sparse positive literals
          neg[i] = rng() & rng() & rng();
        }
        std::vector<uint64_t> completed = RandomWords(rng, stride, trial % 3 - 1);
        // Shape A: positive-only matrices (the common monotone-goal case).
        EXPECT_EQ(scalar_.count_unsatisfied_literals(pos.data(), nullptr,
                                                     stride, num_clauses,
                                                     completed.data()),
                  active_.count_unsatisfied_literals(pos.data(), nullptr,
                                                     stride, num_clauses,
                                                     completed.data()))
            << "pos-only stride=" << stride << " clauses=" << num_clauses
            << " trial=" << trial;
        // Shape B: with negative literals (clauses may be dead).
        EXPECT_EQ(scalar_.count_unsatisfied_literals(pos.data(), neg.data(),
                                                     stride, num_clauses,
                                                     completed.data()),
                  active_.count_unsatisfied_literals(pos.data(), neg.data(),
                                                     stride, num_clauses,
                                                     completed.data()))
            << "with-neg stride=" << stride << " clauses=" << num_clauses
            << " trial=" << trial;
      }
    }
  }
}

TEST_F(SimdDifferentialTest, CountUnsatisfiedLiteralsEdgeCases) {
  // All clauses dead -> -1 from both tables.
  std::vector<uint64_t> pos = {0x1, 0x2};
  std::vector<uint64_t> neg = {0x8, 0x8};  // both clauses forbid bit 3
  std::vector<uint64_t> completed = {0x8};
  EXPECT_EQ(scalar_.count_unsatisfied_literals(pos.data(), neg.data(), 1, 2,
                                               completed.data()),
            -1);
  EXPECT_EQ(active_.count_unsatisfied_literals(pos.data(), neg.data(), 1, 2,
                                               completed.data()),
            -1);
  // A satisfied clause short-circuits to 0.
  completed[0] = 0x1;
  EXPECT_EQ(scalar_.count_unsatisfied_literals(pos.data(), nullptr, 1, 2,
                                               completed.data()),
            0);
  EXPECT_EQ(active_.count_unsatisfied_literals(pos.data(), nullptr, 1, 2,
                                               completed.data()),
            0);
}

TEST_F(SimdDifferentialTest, WrapperFastPathMatchesKernels) {
  // The inline wrappers take a scalar shortcut for n <= 2; make sure the
  // shortcut and the dispatched kernel agree on both sides of the cut.
  std::mt19937_64 rng(7);
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{4}}) {
    std::vector<uint64_t> a = RandomWords(rng, n, 0);
    std::vector<uint64_t> b = RandomWords(rng, n, 0);
    EXPECT_EQ(Popcount(a.data(), n), active_.popcount(a.data(), n));
    EXPECT_EQ(AndNotPopcount(a.data(), b.data(), n),
              active_.and_not_popcount(a.data(), b.data(), n));
    EXPECT_EQ(SubsetOf(a.data(), b.data(), n),
              active_.subset_of(a.data(), b.data(), n));
    EXPECT_EQ(Intersects(a.data(), b.data(), n),
              active_.intersects(a.data(), b.data(), n));
    EXPECT_EQ(Equal(a.data(), b.data(), n),
              active_.equal(a.data(), b.data(), n));
  }
}

TEST_F(SimdDifferentialTest, SingleWordHelpers) {
  EXPECT_EQ(PopcountWord(0), 0);
  EXPECT_EQ(PopcountWord(~uint64_t{0}), 64);
  EXPECT_EQ(PopcountWord(uint64_t{1} << 63), 1);
  EXPECT_EQ(CountTrailingZeros(uint64_t{1}), 0);
  EXPECT_EQ(CountTrailingZeros(uint64_t{1} << 63), 63);
  EXPECT_EQ(CountTrailingZeros(uint64_t{0b101000}), 3);
}

}  // namespace
}  // namespace coursenav::simd

#include "core/deadline_generator.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::AllLeafPaths;
using testing_util::Figure3Fixture;

TEST(DeadlineGeneratorTest, ReproducesPaperFigure3) {
  Figure3Fixture fix;
  ExplorationOptions options;
  options.max_courses_per_term = 3;

  auto result = GenerateDeadlineDrivenPaths(
      fix.catalog, fix.schedule, fix.FreshStudent(), fix.spring13, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.ok());

  // The paper's Figure 3 graph: nodes n1..n9, eight edges, three leaf
  // paths — two reaching the deadline (n8, n9) and one dead end (n6).
  EXPECT_EQ(result->graph.num_nodes(), 9);
  EXPECT_EQ(result->graph.num_edges(), 8);
  EXPECT_EQ(result->stats.terminal_paths, 3);
  EXPECT_EQ(result->stats.goal_paths, 2);
  EXPECT_EQ(result->stats.dead_end_paths, 1);

  // Every produced path is feasible.
  for (const LearningPath& path : AllLeafPaths(result->graph)) {
    EXPECT_TRUE(path.Validate(fix.catalog, fix.schedule).ok());
  }

  // The n1 -> n4 -> n7 -> n9 path (take 29A, skip Spring, take 11A) exists:
  // three steps with an empty Spring'12 selection.
  bool found_skip_path = false;
  for (const LearningPath& path : AllLeafPaths(result->graph)) {
    if (path.Length() == 3 && path.steps()[1].selection.empty() &&
        !path.steps()[0].selection.empty()) {
      found_skip_path = true;
    }
  }
  EXPECT_TRUE(found_skip_path);
}

TEST(DeadlineGeneratorTest, DeadEndWhenNothingRemains) {
  Figure3Fixture fix;
  ExplorationOptions options;
  auto result = GenerateDeadlineDrivenPaths(
      fix.catalog, fix.schedule, fix.FreshStudent(), fix.spring13, options);
  ASSERT_TRUE(result.ok());
  // The {11A, 29A} -> {21A} branch (n6) ends one semester early because
  // every course is completed.
  bool found_early_leaf = false;
  for (NodeId leaf : result->graph.LeafNodes()) {
    const LearningNode& node = result->graph.node(leaf);
    if (node.term < fix.spring13) {
      found_early_leaf = true;
      EXPECT_EQ(node.completed.count(), 3);
    }
  }
  EXPECT_TRUE(found_early_leaf);
}

TEST(DeadlineGeneratorTest, MaxCoursesPerTermLimitsSelections) {
  Figure3Fixture fix;
  ExplorationOptions options;
  options.max_courses_per_term = 1;
  auto result = GenerateDeadlineDrivenPaths(
      fix.catalog, fix.schedule, fix.FreshStudent(), fix.spring13, options);
  ASSERT_TRUE(result.ok());
  for (const LearningPath& path : AllLeafPaths(result->graph)) {
    for (const PathStep& step : path.steps()) {
      EXPECT_LE(step.selection.count(), 1);
    }
  }
  // With m=1 the {11A, 29A} double-selection vanishes, shrinking the graph.
  EXPECT_LT(result->graph.num_nodes(), 9);
}

TEST(DeadlineGeneratorTest, AvoidedCoursesNeverAppear) {
  Figure3Fixture fix;
  ExplorationOptions options;
  DynamicBitset avoid = fix.catalog.NewCourseSet();
  avoid.set(fix.c29a);
  options.avoid_courses = avoid;
  auto result = GenerateDeadlineDrivenPaths(
      fix.catalog, fix.schedule, fix.FreshStudent(), fix.spring13, options);
  ASSERT_TRUE(result.ok());
  for (const LearningPath& path : AllLeafPaths(result->graph)) {
    EXPECT_FALSE(path.FinalCompleted().test(fix.c29a));
  }
}

TEST(DeadlineGeneratorTest, VoluntarySkipAddsEmptyEdges) {
  Figure3Fixture fix;
  ExplorationOptions strict, lax;
  lax.allow_voluntary_skip = true;
  auto strict_result = GenerateDeadlineDrivenPaths(
      fix.catalog, fix.schedule, fix.FreshStudent(), fix.spring13, strict);
  auto lax_result = GenerateDeadlineDrivenPaths(
      fix.catalog, fix.schedule, fix.FreshStudent(), fix.spring13, lax);
  ASSERT_TRUE(strict_result.ok());
  ASSERT_TRUE(lax_result.ok());
  EXPECT_GT(lax_result->graph.num_nodes(), strict_result->graph.num_nodes());
  // With voluntary skips the fully-empty path (never enroll) exists.
  bool found_empty = false;
  for (const LearningPath& path : AllLeafPaths(lax_result->graph)) {
    if (path.FinalCompleted().empty()) found_empty = true;
  }
  EXPECT_TRUE(found_empty);
}

TEST(DeadlineGeneratorTest, InputValidation) {
  Figure3Fixture fix;
  ExplorationOptions options;
  EnrollmentStatus start = fix.FreshStudent();

  // End not after start.
  EXPECT_TRUE(GenerateDeadlineDrivenPaths(fix.catalog, fix.schedule, start,
                                          fix.fall11, options)
                  .status()
                  .IsInvalidArgument());
  // m < 1.
  ExplorationOptions bad_m;
  bad_m.max_courses_per_term = 0;
  EXPECT_TRUE(GenerateDeadlineDrivenPaths(fix.catalog, fix.schedule, start,
                                          fix.spring13, bad_m)
                  .status()
                  .IsInvalidArgument());
  // Foreign completed set.
  EnrollmentStatus foreign{fix.fall11, DynamicBitset(7)};
  EXPECT_TRUE(GenerateDeadlineDrivenPaths(fix.catalog, fix.schedule, foreign,
                                          fix.spring13, options)
                  .status()
                  .IsInvalidArgument());
  // Unfinalized catalog.
  Catalog raw;
  Course c;
  c.code = "X";
  ASSERT_TRUE(raw.AddCourse(std::move(c)).ok());
  OfferingSchedule empty_schedule(raw.size());
  EnrollmentStatus raw_start{fix.fall11, raw.NewCourseSet()};
  EXPECT_TRUE(GenerateDeadlineDrivenPaths(raw, empty_schedule, raw_start,
                                          fix.spring13, options)
                  .status()
                  .IsFailedPrecondition());
}

TEST(DeadlineGeneratorTest, NodeBudgetReturnsPartialGraph) {
  Figure3Fixture fix;
  ExplorationOptions options;
  options.limits.max_nodes = 4;
  auto result = GenerateDeadlineDrivenPaths(
      fix.catalog, fix.schedule, fix.FreshStudent(), fix.spring13, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.IsResourceExhausted());
  EXPECT_LE(result->graph.num_nodes(), 5);
  EXPECT_GE(result->graph.num_nodes(), 1);
}

TEST(DeadlineGeneratorTest, StartWithCompletedCourses) {
  Figure3Fixture fix;
  ExplorationOptions options;
  DynamicBitset done = fix.catalog.NewCourseSet();
  done.set(fix.c11a);
  done.set(fix.c29a);
  EnrollmentStatus start{fix.fall11, done};
  auto result = GenerateDeadlineDrivenPaths(fix.catalog, fix.schedule, start,
                                            fix.spring13, options);
  ASSERT_TRUE(result.ok());
  // Nothing electable in Fall'11; skip to Spring'12 for 21A.
  for (const LearningPath& path : AllLeafPaths(result->graph)) {
    EXPECT_TRUE(path.steps().empty() || path.steps()[0].selection.empty());
    EXPECT_TRUE(path.Validate(fix.catalog, fix.schedule).ok());
  }
}

TEST(DeadlineGeneratorTest, SyntheticCatalogPathsAllValid) {
  data::SyntheticConfig config;
  config.num_courses = 12;
  config.num_intro_courses = 3;
  config.seed = 5;
  auto bundle = data::BuildSyntheticCatalog(config);
  ASSERT_TRUE(bundle.ok());
  ExplorationOptions options;
  options.max_courses_per_term = 2;
  EnrollmentStatus start{config.first_term, bundle->catalog.NewCourseSet()};
  auto result = GenerateDeadlineDrivenPaths(
      bundle->catalog, bundle->schedule, start, config.first_term + 3,
      options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.ok());
  EXPECT_GT(result->stats.terminal_paths, 0);
  for (const LearningPath& path : AllLeafPaths(result->graph)) {
    EXPECT_TRUE(path.Validate(bundle->catalog, bundle->schedule).ok())
        << path.ToString(bundle->catalog);
  }
}

}  // namespace
}  // namespace coursenav

#include "core/ranking.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/goal_generator.h"
#include "core/ranked_generator.h"
#include "requirements/expr_goal.h"
#include "tests/test_util.h"

namespace coursenav {
namespace {

using testing_util::Figure3Fixture;
using testing_util::GoalPaths;

TEST(TimeRankingTest, EveryEdgeCostsOne) {
  Figure3Fixture fix;
  TimeRanking ranking;
  DynamicBitset selection = fix.catalog.NewCourseSet();
  EXPECT_DOUBLE_EQ(ranking.EdgeCost(selection, fix.fall11), 1.0);
  selection.set(fix.c11a);
  selection.set(fix.c29a);
  EXPECT_DOUBLE_EQ(ranking.EdgeCost(selection, fix.fall11), 1.0);
  EXPECT_EQ(ranking.name(), "time");
}

TEST(TimeRankingTest, RemainingCostLowerBoundIsCeilLeftOverM) {
  Figure3Fixture fix;
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());
  TimeRanking ranking;
  DynamicBitset none = fix.catalog.NewCourseSet();
  EXPECT_DOUBLE_EQ(ranking.RemainingCostLowerBound(none, **goal, 3), 1.0);
  EXPECT_DOUBLE_EQ(ranking.RemainingCostLowerBound(none, **goal, 2), 2.0);
  EXPECT_DOUBLE_EQ(ranking.RemainingCostLowerBound(none, **goal, 1), 3.0);
  DynamicBitset two = none;
  two.set(fix.c11a);
  two.set(fix.c29a);
  EXPECT_DOUBLE_EQ(ranking.RemainingCostLowerBound(two, **goal, 3), 1.0);
  DynamicBitset all = two;
  all.set(fix.c21a);
  EXPECT_DOUBLE_EQ(ranking.RemainingCostLowerBound(all, **goal, 3), 0.0);
}

TEST(TimeRankingTest, UnreachableGoalGivesHugeBound) {
  Figure3Fixture fix;
  auto goal = ExprGoal::Create(
      *expr::ParseBoolExpr("11A and not 29A"), fix.catalog);
  ASSERT_TRUE(goal.ok());
  TimeRanking ranking;
  DynamicBitset with29 = fix.catalog.NewCourseSet();
  with29.set(fix.c29a);
  EXPECT_GE(ranking.RemainingCostLowerBound(with29, **goal, 3),
            static_cast<double>(kGoalUnreachable));
}

TEST(WorkloadRankingTest, SumsSelectedWorkloads) {
  Catalog catalog;
  Course a;
  a.code = "A";
  a.workload_hours = 3.5;
  Course b;
  b.code = "B";
  b.workload_hours = 6.0;
  ASSERT_TRUE(catalog.AddCourse(std::move(a)).ok());
  ASSERT_TRUE(catalog.AddCourse(std::move(b)).ok());
  ASSERT_TRUE(catalog.Finalize().ok());
  WorkloadRanking ranking(&catalog);
  DynamicBitset both = catalog.NewCourseSet();
  both.set(0);
  both.set(1);
  EXPECT_DOUBLE_EQ(ranking.EdgeCost(both, Term(Season::kFall, 2012)), 9.5);
  EXPECT_DOUBLE_EQ(
      ranking.EdgeCost(catalog.NewCourseSet(), Term(Season::kFall, 2012)),
      0.0);
  // Default fold is additive.
  EXPECT_DOUBLE_EQ(ranking.Combine(4.0, 9.5), 13.5);
}

TEST(BottleneckRankingTest, CombineIsMax) {
  Catalog catalog;
  Course a;
  a.code = "A";
  a.workload_hours = 5.0;
  ASSERT_TRUE(catalog.AddCourse(std::move(a)).ok());
  ASSERT_TRUE(catalog.Finalize().ok());
  BottleneckWorkloadRanking ranking(&catalog);
  EXPECT_DOUBLE_EQ(ranking.Combine(4.0, 9.0), 9.0);
  EXPECT_DOUBLE_EQ(ranking.Combine(9.0, 4.0), 9.0);
  EXPECT_EQ(ranking.name(), "bottleneck-workload");
}

TEST(BottleneckRankingTest, MinimizesHeaviestSemester) {
  // Goal: take A and B. Either both at once (one 12-hour semester) or one
  // per semester (two semesters, heaviest 7 hours). Bottleneck ranking
  // must prefer the spread plan; time ranking prefers the packed one.
  Catalog catalog;
  Course a;
  a.code = "A";
  a.workload_hours = 7;
  Course b;
  b.code = "B";
  b.workload_hours = 5;
  ASSERT_TRUE(catalog.AddCourse(std::move(a)).ok());
  ASSERT_TRUE(catalog.AddCourse(std::move(b)).ok());
  ASSERT_TRUE(catalog.Finalize().ok());
  OfferingSchedule schedule(catalog.size());
  Term f12(Season::kFall, 2012);
  for (Term t = f12; t <= f12 + 2; t = t.Next()) {
    ASSERT_TRUE(schedule.AddOffering(0, t).ok());
    ASSERT_TRUE(schedule.AddOffering(1, t).ok());
  }
  auto goal = ExprGoal::CompleteAll({"A", "B"}, catalog);
  ASSERT_TRUE(goal.ok());

  ExplorationOptions options;
  options.max_courses_per_term = 2;
  EnrollmentStatus start{f12, catalog.NewCourseSet()};
  BottleneckWorkloadRanking ranking(&catalog);
  auto result = GenerateRankedPaths(catalog, schedule, start, f12 + 3,
                                    **goal, ranking, /*k=*/1, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->paths.size(), 1u);
  EXPECT_DOUBLE_EQ(result->paths[0].cost(), 7.0);  // heaviest semester
  EXPECT_EQ(result->paths[0].Length(), 2);         // spread over two terms
}

TEST(RankedGeneratorTest, HeuristicDoesNotChangeTopKCosts) {
  // A* (with the time heuristic) and plain UCS (workload has a zero
  // heuristic) must both deliver optimal cost sequences; cross-check the
  // A* time result against brute force on Figure 3.
  Figure3Fixture fix;
  ExplorationOptions options;
  auto goal = ExprGoal::CompleteAll({"11A", "29A", "21A"}, fix.catalog);
  ASSERT_TRUE(goal.ok());

  auto all = GenerateGoalDrivenPaths(fix.catalog, fix.schedule,
                                     fix.FreshStudent(), fix.spring13,
                                     **goal, options);
  ASSERT_TRUE(all.ok());
  std::vector<int> lengths;
  for (const LearningPath& path : GoalPaths(all->graph)) {
    lengths.push_back(path.Length());
  }
  std::sort(lengths.begin(), lengths.end());

  TimeRanking ranking;
  auto ranked = GenerateRankedPaths(fix.catalog, fix.schedule,
                                    fix.FreshStudent(), fix.spring13, **goal,
                                    ranking, static_cast<int>(lengths.size()),
                                    options);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->paths.size(), lengths.size());
  for (size_t i = 0; i < lengths.size(); ++i) {
    EXPECT_DOUBLE_EQ(ranked->paths[i].cost(), lengths[i]);
  }
}

TEST(ReliabilityRankingTest, CostConversionRoundTrip) {
  EXPECT_DOUBLE_EQ(ReliabilityRanking::CostToReliability(0.0), 1.0);
  double cost = -std::log(0.25);
  EXPECT_NEAR(ReliabilityRanking::CostToReliability(cost), 0.25, 1e-12);
}

}  // namespace
}  // namespace coursenav
